//! Accelerator invocation prediction (§V: "When to invoke a BL-Path
//! accelerator?").
//!
//! Before control reaches a frame's entry block, the host must decide
//! whether to invoke the accelerator (and risk a guard-failure rollback) or
//! run the region on the core. Needle keeps an *invocation history table*
//! indexed by recent program branch history: a table of two-bit saturating
//! counters trained on whether past invocations committed.

/// Branch-history-indexed two-bit-counter predictor.
#[derive(Debug, Clone)]
pub struct InvocationPredictor {
    history_bits: u32,
    ghr: u64,
    table: Vec<u8>,
    /// Predictions made.
    pub predictions: u64,
    /// Predictions that matched the eventual commit/abort outcome.
    pub correct: u64,
}

impl InvocationPredictor {
    /// A predictor with `history_bits` of global branch history
    /// (table of `2^history_bits` counters, initialised weakly-invoke).
    pub fn new(history_bits: u32) -> InvocationPredictor {
        assert!(history_bits <= 20, "history register limited to 20 bits");
        InvocationPredictor {
            history_bits,
            ghr: 0,
            table: vec![2; 1usize << history_bits],
            predictions: 0,
            correct: 0,
        }
    }

    fn index(&self) -> usize {
        (self.ghr & ((1u64 << self.history_bits) - 1)) as usize
    }

    /// Record a program branch outcome into the global history register.
    pub fn note_branch(&mut self, taken: bool) {
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    /// Should the accelerator be invoked under the current history?
    pub fn predict(&self) -> bool {
        self.table[self.index()] >= 2
    }

    /// Train with the actual outcome of an invocation opportunity (whether
    /// the frame would have committed), updating accuracy statistics.
    pub fn update(&mut self, predicted: bool, committed: bool) {
        self.predictions += 1;
        if predicted == committed {
            self.correct += 1;
        }
        let idx = self.index();
        let c = &mut self.table[idx];
        if committed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Prediction precision so far (1.0 when nothing was predicted yet).
    pub fn precision(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_commit() {
        let mut p = InvocationPredictor::new(4);
        for _ in 0..50 {
            let pred = p.predict();
            p.update(pred, true);
            p.note_branch(true);
        }
        assert!(p.predict());
        assert!(p.precision() > 0.9);
    }

    #[test]
    fn learns_always_abort() {
        let mut p = InvocationPredictor::new(4);
        for _ in 0..50 {
            let pred = p.predict();
            p.update(pred, false);
        }
        assert!(!p.predict());
        // Initial optimism costs a couple of mispredictions only.
        assert!(p.precision() > 0.9);
    }

    #[test]
    fn history_separates_contexts() {
        // Commit iff the last branch was taken.
        let mut p = InvocationPredictor::new(1);
        for i in 0..100 {
            let taken = i % 2 == 0;
            p.note_branch(taken);
            let pred = p.predict();
            p.update(pred, taken);
        }
        p.note_branch(true);
        assert!(p.predict());
        p.note_branch(false);
        assert!(!p.predict());
    }

    #[test]
    #[should_panic(expected = "history register limited")]
    fn rejects_oversized_history() {
        InvocationPredictor::new(32);
    }
}
