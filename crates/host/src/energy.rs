//! Host energy model.
//!
//! Per-event dynamic energy constants inspired by McPAT's embedded ARM
//! template at 1 GHz (the paper's energy methodology, Table V). Absolute
//! joules are not the point — the paper's energy argument rests on the
//! *front-end* (fetch, decode, rename, dispatch, commit) costing a fixed
//! overhead per dynamic instruction, which a dataflow accelerator elides.

use crate::ooo::HostStats;

/// Per-event energies in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct HostEnergyModel {
    /// Front end per dynamic instruction: fetch + decode + rename +
    /// dispatch + commit. The dominant term accelerators recover.
    pub e_frontend_pj: f64,
    /// ROB/scheduler bookkeeping per instruction.
    pub e_window_pj: f64,
    /// Register-file read/write energy per instruction (averaged operands).
    pub e_rf_pj: f64,
    /// Integer ALU op.
    pub e_int_pj: f64,
    /// FPU op.
    pub e_fpu_pj: f64,
    /// L1 access.
    pub e_l1_pj: f64,
    /// L2 access.
    pub e_l2_pj: f64,
    /// DRAM access.
    pub e_mem_pj: f64,
    /// Core leakage + clock tree per active cycle.
    pub e_static_per_cycle_pj: f64,
}

impl Default for HostEnergyModel {
    fn default() -> HostEnergyModel {
        HostEnergyModel {
            e_frontend_pj: 45.0,
            e_window_pj: 8.0,
            e_rf_pj: 10.0,
            e_int_pj: 8.0,
            e_fpu_pj: 25.0,
            e_l1_pj: 22.0,
            e_l2_pj: 120.0,
            e_mem_pj: 2_000.0,
            e_static_per_cycle_pj: 30.0,
        }
    }
}

/// Total host energy (pJ) for a run described by `stats`.
pub fn host_energy_pj(model: &HostEnergyModel, stats: &HostStats) -> f64 {
    let per_inst = model.e_frontend_pj + model.e_window_pj + model.e_rf_pj;
    let mut e = stats.insts as f64 * per_inst;
    e += stats.int_ops as f64 * model.e_int_pj;
    e += stats.fp_ops as f64 * model.e_fpu_pj;
    let l1_accesses = stats.cache.l1_hits + stats.cache.l1_misses;
    e += l1_accesses as f64 * model.e_l1_pj;
    let l2_accesses = stats.cache.l2_hits + stats.cache.l2_misses;
    e += l2_accesses as f64 * model.e_l2_pj;
    e += stats.cache.l2_misses as f64 * model.e_mem_pj;
    e += stats.cycles as f64 * model.e_static_per_cycle_pj;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::HierarchyStats;

    #[test]
    fn frontend_dominates_simple_int_code() {
        let model = HostEnergyModel::default();
        let stats = HostStats {
            cycles: 250,
            insts: 1000,
            int_ops: 1000,
            ..Default::default()
        };
        let e = host_energy_pj(&model, &stats);
        let frontend = 1000.0 * (45.0 + 8.0 + 10.0);
        assert!(frontend / e > 0.7, "front-end share {}", frontend / e);
    }

    #[test]
    fn memory_traffic_is_expensive() {
        let model = HostEnergyModel::default();
        let base = HostStats {
            cycles: 100,
            insts: 100,
            int_ops: 100,
            ..Default::default()
        };
        let mut missy = base;
        missy.cache = HierarchyStats {
            l1_hits: 0,
            l1_misses: 50,
            l2_hits: 0,
            l2_misses: 50,
        };
        assert!(host_energy_pj(&model, &missy) > 2.0 * host_energy_pj(&model, &base));
    }

    #[test]
    fn energy_scales_with_each_component() {
        let model = HostEnergyModel::default();
        let zero = HostStats::default();
        assert_eq!(host_energy_pj(&model, &zero), 0.0);
        let one_cycle = HostStats {
            cycles: 1,
            ..Default::default()
        };
        assert_eq!(host_energy_pj(&model, &one_cycle), 30.0);
    }
}
