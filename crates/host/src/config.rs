//! Host core parameters (Table V).

/// Configuration of the modelled host OOO core.
///
/// Defaults follow Table V: 1 GHz embedded-class 4-way OOO, 96-entry ROB,
/// 6 ALUs, 2 FPUs; 64 KB 4-way L1-D at 2 cycles; NUCA L2 at 20 cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// Instructions fetched/renamed per cycle.
    pub fetch_width: u64,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Integer ALUs.
    pub alus: usize,
    /// Floating-point units.
    pub fpus: usize,
    /// L1-D ports.
    pub mem_ports: usize,
    /// Integer op latency.
    pub int_latency: u64,
    /// FP op latency.
    pub fp_latency: u64,
    /// Integer/FP divide latency.
    pub div_latency: u64,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            fetch_width: 4,
            rob_entries: 96,
            alus: 6,
            fpus: 2,
            mem_ports: 2,
            int_latency: 1,
            fp_latency: 3,
            div_latency: 12,
            l1_latency: 2,
            l2_latency: 20,
            mem_latency: 200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_v() {
        let c = HostConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.alus, 6);
        assert_eq!(c.fpus, 2);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 20);
    }
}
