//! Two-level set-associative write-back cache hierarchy.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheConfig {
    /// 64 KB, 4-way, 64 B lines: the Table V L1-D.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size: 64 * 1024,
            ways: 4,
            line: 64,
        }
    }

    /// 2 MB, 8-way (8 NUCA banks folded into one lookup): the Table V L2.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size: 2 * 1024 * 1024,
            ways: 8,
            line: 64,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size / self.line / self.ways).max(1)
    }
}

/// One level of LRU set-associative cache. Tags only (no data payload).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per set: tags in LRU order (front = most recent), with a dirty bit.
    sets: Vec<Vec<(u64, bool)>>,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        Cache {
            sets: vec![Vec::new(); cfg.num_sets()],
            cfg,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line as u64;
        (
            (line % self.sets.len() as u64) as usize,
            line / self.sets.len() as u64,
        )
    }

    /// Access `addr`; returns `true` on hit. On miss the line is filled
    /// (LRU eviction). `is_store` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_store: bool) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.cfg.ways;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|(t, _)| *t == tag) {
            let (t, d) = lines.remove(pos);
            lines.insert(0, (t, d || is_store));
            true
        } else {
            lines.insert(0, (tag, is_store));
            lines.truncate(ways);
            false
        }
    }

    /// Whether `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|(t, _)| *t == tag)
    }
}

/// Hit/miss statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (= L2 lookups).
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (= memory accesses).
    pub l2_misses: u64,
}

/// The L1 → L2 → memory hierarchy with latency accounting.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// First level.
    pub l1: Cache,
    /// Second level.
    pub l2: Cache,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    /// Accumulated statistics.
    pub stats: HierarchyStats,
}

impl Hierarchy {
    /// Build a hierarchy with the given latencies and default geometries.
    pub fn new(l1_latency: u64, l2_latency: u64, mem_latency: u64) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(CacheConfig::l1_default()),
            l2: Cache::new(CacheConfig::l2_default()),
            l1_latency,
            l2_latency,
            mem_latency,
            stats: HierarchyStats::default(),
        }
    }

    /// Access `addr`; returns the access latency in cycles.
    pub fn access(&mut self, addr: u64, is_store: bool) -> u64 {
        if self.l1.access(addr, is_store) {
            self.stats.l1_hits += 1;
            return self.l1_latency;
        }
        self.stats.l1_misses += 1;
        if self.l2.access(addr, is_store) {
            self.stats.l2_hits += 1;
            return self.l2_latency;
        }
        self.stats.l2_misses += 1;
        self.mem_latency
    }

    /// Access that bypasses the L1 (the uncore CGRA reads/writes via L2).
    pub fn access_l2(&mut self, addr: u64, is_store: bool) -> u64 {
        if self.l2.access(addr, is_store) {
            self.stats.l2_hits += 1;
            self.l2_latency
        } else {
            self.stats.l2_misses += 1;
            self.mem_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut h = Hierarchy::new(2, 20, 200);
        assert_eq!(h.access(0x1000, false), 200); // cold
        assert_eq!(h.access(0x1000, false), 2); // L1 hit
        assert_eq!(h.access(0x1008, false), 2); // same line
        assert_eq!(h.stats.l1_hits, 2);
        assert_eq!(h.stats.l2_misses, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = Hierarchy::new(2, 20, 200);
        // L1: 64K/64B/4-way = 256 sets. Fill 5 lines mapping to set 0.
        let stride = 256 * 64; // set-conflict stride
        for i in 0..5u64 {
            h.access(i * stride, false);
        }
        // The first line was evicted from L1 but lives in L2.
        assert_eq!(h.access(0, false), 20);
        assert!(h.stats.l2_hits >= 1);
    }

    #[test]
    fn lru_keeps_recent_lines() {
        let mut c = Cache::new(CacheConfig {
            size: 4 * 64,
            ways: 4,
            line: 64,
        }); // 1 set, 4 ways
        for i in 0..4u64 {
            c.access(i * 64, false);
        }
        assert!(c.probe(0));
        c.access(0, false); // refresh line 0
        c.access(4 * 64, false); // evicts LRU = line 1
        assert!(c.probe(0));
        assert!(!c.probe(64));
    }

    #[test]
    fn cgra_path_bypasses_l1() {
        let mut h = Hierarchy::new(2, 20, 200);
        h.access_l2(0x2000, true);
        assert_eq!(h.stats.l1_hits + h.stats.l1_misses, 0);
        assert_eq!(h.access_l2(0x2000, false), 20);
    }

    #[test]
    fn store_marks_dirty_and_hits() {
        let mut h = Hierarchy::new(2, 20, 200);
        h.access(0x40, true);
        assert_eq!(h.access(0x40, false), 2);
    }
}
