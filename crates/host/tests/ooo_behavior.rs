//! Behavioural tests of the OOO timing model: the first-order effects the
//! offload comparison relies on.

use needle_host::{HostConfig, HostSim};
use needle_ir::builder::FunctionBuilder;
use needle_ir::interp::{Interp, Memory};
use needle_ir::{Constant, FuncId, Module, Type, Value as V};

fn run(m: &Module, f: FuncId, args: &[Constant], cfg: HostConfig) -> needle_host::HostStats {
    let mut sim = HostSim::new(m, cfg);
    let mut mem = Memory::new();
    Interp::new(m).run(f, args, &mut mem, &mut sim).unwrap();
    sim.finish()
}

/// Wider issue helps fetch-bound parallel code but not a serial chain.
#[test]
fn issue_width_helps_parallel_code_only() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("par", &[Type::I64], Some(Type::I64));
    let mut last = fb.arg(0);
    for k in 0..64 {
        last = fb.add(V::int(k), V::int(1));
    }
    fb.ret(Some(last));
    let par = m.push(fb.finish());
    let mut fb = FunctionBuilder::new("ser", &[Type::I64], Some(Type::I64));
    let mut x = fb.arg(0);
    for _ in 0..64 {
        x = fb.add(x, V::int(1));
    }
    fb.ret(Some(x));
    let ser = m.push(fb.finish());

    let narrow = HostConfig {
        fetch_width: 2,
        ..HostConfig::default()
    };
    let wide = HostConfig {
        fetch_width: 8,
        ..HostConfig::default()
    };
    let args = [Constant::Int(1)];
    let par_narrow = run(&m, par, &args, narrow.clone()).cycles;
    let par_wide = run(&m, par, &args, wide.clone()).cycles;
    assert!(
        par_wide * 2 < par_narrow,
        "parallel: wide {par_wide} vs narrow {par_narrow}"
    );
    let ser_narrow = run(&m, ser, &args, narrow).cycles;
    let ser_wide = run(&m, ser, &args, wide).cycles;
    assert!(
        ser_wide + 8 >= ser_narrow,
        "serial code is chain-bound: {ser_wide} vs {ser_narrow}"
    );
}

/// FPU port pressure: 2 FPUs throttle independent FP streams.
#[test]
fn fpu_ports_throttle_fp_streams() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("fp", &[], Some(Type::I64));
    let mut last = V::float(0.0);
    for k in 0..64 {
        last = fb.fmul(V::float(k as f64), V::float(1.5));
    }
    let r = fb.ftoi(last);
    fb.ret(Some(r));
    let f = m.push(fb.finish());
    let two_fpu = run(&m, f, &[], HostConfig::default()).cycles;
    let eight_fpu = run(
        &m,
        f,
        &[],
        HostConfig {
            fpus: 8,
            fetch_width: 16,
            ..HostConfig::default()
        },
    )
    .cycles;
    assert!(eight_fpu < two_fpu, "8 FPUs {eight_fpu} vs 2 FPUs {two_fpu}");
}

/// Taken branches cost fetch groups: a block-fragmented function is slower
/// than the same ops in a straight line.
#[test]
fn branchy_layout_pays_fetch_redirects() {
    // Independent ops keep both variants fetch-bound, isolating the
    // per-block redirect cost.
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("straight", &[Type::I64], Some(Type::I64));
    let mut last = fb.arg(0);
    for k in 0..64 {
        last = fb.add(V::int(k), V::int(1));
    }
    fb.ret(Some(last));
    let straight = m.push(fb.finish());
    let mut fb = FunctionBuilder::new("frag", &[Type::I64], Some(Type::I64));
    let mut last = fb.arg(0);
    for blk in 0..8 {
        for k in 0..8 {
            last = fb.add(V::int(blk * 8 + k), V::int(1));
        }
        let next = fb.block(format!("b{blk}"));
        fb.br(next);
        fb.switch_to(next);
    }
    fb.ret(Some(last));
    let frag = m.push(fb.finish());
    let args = [Constant::Int(0)];
    let s = run(&m, straight, &args, HostConfig::default()).cycles;
    let fcyc = run(&m, frag, &args, HostConfig::default()).cycles;
    assert!(fcyc >= s + 6, "fragmented {fcyc} vs straight {s}");
}

/// A bigger ROB rides out long-latency misses better.
#[test]
fn rob_size_hides_miss_latency() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("f", &[], Some(Type::I64));
    let v = fb.load(Type::I64, V::ptr(1 << 33)); // cold DRAM miss
    for k in 0..512 {
        fb.add(V::int(k), V::int(2));
    }
    fb.ret(Some(v));
    let f = m.push(fb.finish());
    let small = run(
        &m,
        f,
        &[],
        HostConfig {
            rob_entries: 16,
            ..HostConfig::default()
        },
    )
    .cycles;
    let big = run(
        &m,
        f,
        &[],
        HostConfig {
            rob_entries: 512,
            ..HostConfig::default()
        },
    )
    .cycles;
    assert!(big < small, "512-entry {big} vs 16-entry {small}");
}

/// IPC is bounded by fetch width.
#[test]
fn ipc_never_exceeds_fetch_width() {
    for name in ["164.gzip", "470.lbm", "458.sjeng"] {
        let w = needle_workloads::by_name(name).unwrap();
        let mut sim = HostSim::new(&w.module, HostConfig::default());
        let mut mem = w.memory.clone();
        Interp::new(&w.module)
            .run(w.func, &w.args, &mut mem, &mut sim)
            .unwrap();
        let stats = sim.finish();
        assert!(stats.ipc() <= 4.0 + 1e-9, "{name}: ipc {}", stats.ipc());
        assert!(stats.ipc() > 0.2, "{name}: ipc {}", stats.ipc());
    }
}
