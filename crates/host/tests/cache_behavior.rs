//! Behavioural tests of the cache hierarchy and timing model under
//! synthetic access patterns.

use needle_host::{Cache, CacheConfig, Hierarchy};

#[test]
fn working_set_within_l1_stays_in_l1() {
    let mut h = Hierarchy::new(2, 20, 200);
    // 32 KB working set < 64 KB L1.
    let lines = 32 * 1024 / 64;
    for round in 0..4 {
        for i in 0..lines {
            let lat = h.access(i as u64 * 64, false);
            if round > 0 {
                assert_eq!(lat, 2, "line {i} round {round}");
            }
        }
    }
    assert_eq!(h.stats.l1_misses, lines as u64);
    assert_eq!(h.stats.l1_hits, 3 * lines as u64);
}

#[test]
fn working_set_between_l1_and_l2_thrashes_l1_only() {
    let mut h = Hierarchy::new(2, 20, 200);
    // 256 KB working set: > L1 (64 KB), < L2 (2 MB).
    let lines = 256 * 1024 / 64;
    for _ in 0..3 {
        for i in 0..lines {
            h.access(i as u64 * 64, false);
        }
    }
    // After the cold pass, L2 absorbs everything.
    assert_eq!(h.stats.l2_misses, lines as u64);
    assert!(h.stats.l2_hits > 0);
}

#[test]
fn streaming_pattern_never_rehits() {
    let mut h = Hierarchy::new(2, 20, 200);
    for i in 0..10_000u64 {
        let lat = h.access(i * 64 * 997, false); // sparse unique lines
        assert_eq!(lat, 200);
    }
    assert_eq!(h.stats.l1_hits, 0);
}

#[test]
fn associativity_conflicts_evict_lru_first() {
    let cfg = CacheConfig {
        size: 8 * 64,
        ways: 2,
        line: 64,
    }; // 4 sets, 2 ways
    let mut c = Cache::new(cfg);
    let set_stride = 4 * 64;
    // Fill set 0 with lines A, B.
    assert!(!c.access(0, false)); // A
    assert!(!c.access(set_stride as u64, false)); // B
    assert!(c.access(0, false)); // A hit; A is MRU
    // C maps to set 0 and evicts B (the LRU).
    assert!(!c.access(2 * set_stride as u64, false));
    assert!(c.probe(0));
    assert!(!c.probe(set_stride as u64));
}

#[test]
fn dirty_writeback_state_is_tracked_per_line() {
    let mut h = Hierarchy::new(2, 20, 200);
    h.access(0x100, true); // write-allocate, dirty
    h.access(0x100, false);
    h.access(0x140, false); // same line? 0x140 is a different 64B line
    assert_eq!(h.stats.l1_hits, 1);
}

#[test]
fn l2_path_for_accelerator_shares_state_with_host() {
    let mut h = Hierarchy::new(2, 20, 200);
    // Accelerator writes via L2.
    h.access_l2(0x4000, true);
    // Host read: L1 misses, but the L2 hit proves shared visibility.
    let lat = h.access(0x4000, false);
    assert_eq!(lat, 20);
}
