//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`]/[`Rng::gen_bool`]. The generator is xoshiro256**
//! seeded through splitmix64 — deterministic, fast, and statistically
//! sound for workload synthesis and fault-injection campaigns. The stream
//! differs from upstream `StdRng` (ChaCha12), so seeds produce different
//! (but equally stable) sequences.

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`; integer and float element types).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A `u64` in `[0, 1)` with 53 bits of precision.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Debiased bounded sampling (Lemire's widening-multiply method).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound; // (2^64 - bound) mod bound
        while low < threshold {
            m = (rng.next_u64() as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (uniform_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with splitmix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = StdRng::splitmix(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0, "different seeds should diverge immediately");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(1u32..16);
            assert!((1..16).contains(&u));
            let f = rng.gen_range(0.01f64..0.50);
            assert!((0.01..0.50).contains(&f));
            let i = rng.gen_range(0usize..=7);
            assert!(i <= 7);
        }
    }

    #[test]
    fn bounded_sampling_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
