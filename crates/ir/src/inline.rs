//! Function inlining.
//!
//! Needle aggressively inlines hot call chains before path profiling (§II:
//! "Our predication statistics differ from prior work because of aggressive
//! inlining of call sequences"). This pass performs call-site inlining on
//! the reproduction IR.

use std::fmt;

use crate::inst::{Inst, Op, Terminator};
use crate::module::{BlockId, FuncId, InstId, Module, Value};

/// Inlining failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The instruction is not a call.
    NotACall(InstId),
    /// Direct recursion cannot be inlined.
    Recursive(FuncId),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NotACall(i) => write!(f, "{i} is not a call instruction"),
            InlineError::Recursive(id) => write!(f, "cannot inline recursive call to {id:?}"),
        }
    }
}

impl std::error::Error for InlineError {}

/// Inline the call at `call_site` inside `caller`.
///
/// The containing block is split after the call; the callee's blocks are
/// cloned into the caller with values remapped; returns become jumps to the
/// continuation block, where a φ merges the return values.
///
/// # Errors
/// Fails if `call_site` is not a call, or the call is directly recursive.
pub fn inline_call(
    module: &mut Module,
    caller: FuncId,
    call_site: InstId,
) -> Result<(), InlineError> {
    let callee_id = match module.func(caller).inst(call_site).op {
        Op::Call(c) => c,
        _ => return Err(InlineError::NotACall(call_site)),
    };
    if callee_id == caller {
        return Err(InlineError::Recursive(callee_id));
    }
    let callee = module.func(callee_id).clone();
    let func = module.func_mut(caller);

    // Locate the call.
    let (orig_bb, pos) = func
        .block_ids()
        .find_map(|bb| {
            func.block(bb)
                .insts
                .iter()
                .position(|i| *i == call_site)
                .map(|p| (bb, p))
        })
        .ok_or(InlineError::NotACall(call_site))?;
    let call_args = func.inst(call_site).args.clone();
    // Neutralise the arena entry: the call is removed from its block below,
    // but arena scans should not see a stale `Call` op.
    *func.inst_mut(call_site) = Inst::binary(Op::Add, crate::Type::I64, Value::int(0), Value::int(0));

    // Split: tail instructions and the terminator move to `cont`.
    let cont_bb = func.add_block(format!("{}.cont", func.block(orig_bb).name));
    let tail: Vec<InstId> = func.block_mut(orig_bb).insts.split_off(pos + 1);
    func.block_mut(orig_bb).insts.pop(); // drop the call itself
    func.block_mut(cont_bb).insts = tail;
    let orig_term = std::mem::replace(&mut func.block_mut(orig_bb).term, Terminator::Unreachable);
    func.block_mut(cont_bb).term = orig_term;

    // φs in the old successors must now name `cont` as the incoming block.
    let n_insts_before = func.insts.len();
    for inst in func.insts.iter_mut().take(n_insts_before) {
        if inst.is_phi() {
            for b in &mut inst.phi_blocks {
                if *b == orig_bb {
                    *b = cont_bb;
                }
            }
        }
    }

    // Clone callee bodies with remapping.
    let block_off = func.blocks.len() as u32;
    let inst_off = func.insts.len() as u32;
    let map_block = |b: BlockId| BlockId(b.0 + block_off);
    let map_value = |v: Value| -> Value {
        match v {
            Value::Inst(i) => Value::Inst(InstId(i.0 + inst_off)),
            Value::Arg(n) => call_args[n as usize],
            Value::Const(c) => Value::Const(c),
        }
    };

    let mut ret_edges: Vec<(BlockId, Option<Value>)> = Vec::new();
    for (bi, cb) in callee.blocks.iter().enumerate() {
        let new_bb = func.add_block(format!("inl.{}.{}", callee.name, cb.name));
        debug_assert_eq!(new_bb, map_block(BlockId(bi as u32)));
        for &ciid in &cb.insts {
            let ci = callee.inst(ciid);
            let new_inst = Inst {
                op: ci.op,
                ty: ci.ty,
                args: ci.args.iter().map(|a| map_value(*a)).collect(),
                phi_blocks: ci.phi_blocks.iter().map(|b| map_block(*b)).collect(),
                imm: ci.imm,
            };
            let got = func.push_inst(new_bb, new_inst);
            debug_assert_eq!(got, InstId(ciid.0 + inst_off));
        }
        func.block_mut(new_bb).term = match &cb.term {
            Terminator::Br(t) => Terminator::Br(map_block(*t)),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: map_value(*cond),
                then_bb: map_block(*then_bb),
                else_bb: map_block(*else_bb),
            },
            Terminator::Ret(v) => {
                ret_edges.push((new_bb, v.map(map_value)));
                Terminator::Br(cont_bb)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
    }

    // Original block now enters the inlined body.
    func.block_mut(orig_bb).term = Terminator::Br(map_block(callee.entry()));

    // Merge return values with a φ at the head of `cont`, then redirect all
    // uses of the call result to it.
    let replacement: Option<Value> = if callee.ret.is_some() && !ret_edges.is_empty() {
        let incoming: Vec<(BlockId, Value)> = ret_edges
            .iter()
            .map(|(bb, v)| (*bb, v.unwrap_or(Value::int(0))))
            .collect();
        let phi = Inst::phi(callee.ret.unwrap_or_default(), &incoming);
        let phi_id = InstId(func.insts.len() as u32);
        func.insts.push(phi);
        func.block_mut(cont_bb).insts.insert(0, phi_id);
        Some(Value::Inst(phi_id))
    } else {
        None
    };
    if let Some(repl) = replacement {
        for inst in func.insts.iter_mut() {
            for a in &mut inst.args {
                if *a == Value::Inst(call_site) {
                    *a = repl;
                }
            }
        }
        for bb in 0..func.blocks.len() {
            if let Terminator::CondBr { cond, .. } = &mut func.blocks[bb].term {
                if *cond == Value::Inst(call_site) {
                    *cond = repl;
                }
            }
            if let Terminator::Ret(Some(v)) = &mut func.blocks[bb].term {
                if *v == Value::Inst(call_site) {
                    *v = repl;
                }
            }
        }
    }
    Ok(())
}

/// Exhaustively inline every (non-recursive) call in `root`, bottom-up, until
/// no calls remain or `max_insts` is reached. Returns the number of call
/// sites inlined.
pub fn inline_all(module: &mut Module, root: FuncId, max_insts: usize) -> usize {
    let mut inlined = 0;
    loop {
        if module.func(root).insts.len() >= max_insts {
            return inlined;
        }
        let site = module.func(root).block_ids().find_map(|bb| {
            module
                .func(root)
                .block(bb)
                .insts
                .iter()
                .copied()
                .find(|i| match module.func(root).inst(*i).op {
                    Op::Call(c) => c != root,
                    _ => false,
                })
        });
        match site {
            Some(s) => {
                inline_call(module, root, s).expect("site was validated as a call");
                inlined += 1;
            }
            None => return inlined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{Interp, Memory, NullSink};
    use crate::verify::verify_module;
    use crate::{Constant, Type, Value};

    /// callee: abs_diff(a, b) = if a > b { a - b } else { b - a }
    fn abs_diff() -> crate::Function {
        let mut b = FunctionBuilder::new("abs_diff", &[Type::I64, Type::I64], Some(Type::I64));
        let entry = b.entry();
        let t = b.block("t");
        let e = b.block("e");
        let m = b.block("m");
        b.switch_to(entry);
        let c = b.icmp_sgt(b.arg(0), b.arg(1));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x = b.sub(b.arg(0), b.arg(1));
        b.br(m);
        b.switch_to(e);
        let y = b.sub(b.arg(1), b.arg(0));
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64, &[(t, x), (e, y)]);
        b.ret(Some(p));
        b.finish()
    }

    fn build_caller(m: &mut Module, callee: FuncId) -> FuncId {
        // caller(a, b) = abs_diff(a, b) * 3 + 1
        let mut b = FunctionBuilder::new("caller", &[Type::I64, Type::I64], Some(Type::I64));
        let r = b.call(callee, Type::I64, &[b.arg(0), b.arg(1)]);
        let r3 = b.mul(r, Value::int(3));
        let out = b.add(r3, Value::int(1));
        b.ret(Some(out));
        m.push(b.finish())
    }

    fn run(m: &Module, f: FuncId, a: i64, b: i64) -> i64 {
        let mut mem = Memory::new();
        Interp::new(m)
            .run(f, &[Constant::Int(a), Constant::Int(b)], &mut mem, &mut NullSink)
            .unwrap()
            .unwrap()
            .as_int()
    }

    #[test]
    fn inlined_function_preserves_semantics() {
        let mut m = Module::new("t");
        let callee = m.push(abs_diff());
        let caller = build_caller(&mut m, callee);
        let before = run(&m, caller, 3, 10);
        let n = inline_all(&mut m, caller, 10_000);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
        // No calls remain.
        assert!(!m
            .func(caller)
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::Call(_))));
        assert_eq!(run(&m, caller, 3, 10), before);
        assert_eq!(run(&m, caller, 10, 3), before);
        assert_eq!(run(&m, caller, 5, 5), 1);
    }

    #[test]
    fn inlines_nested_call_chains() {
        let mut m = Module::new("t");
        let leaf = m.push(abs_diff());
        // mid(a, b) = abs_diff(a, b) + abs_diff(b, a)
        let mut b = FunctionBuilder::new("mid", &[Type::I64, Type::I64], Some(Type::I64));
        let r1 = b.call(leaf, Type::I64, &[b.arg(0), b.arg(1)]);
        let r2 = b.call(leaf, Type::I64, &[b.arg(1), b.arg(0)]);
        let s = b.add(r1, r2);
        b.ret(Some(s));
        let mid = m.push(b.finish());
        // top(a, b) = mid(a, b) * 2
        let mut b = FunctionBuilder::new("top", &[Type::I64, Type::I64], Some(Type::I64));
        let r = b.call(mid, Type::I64, &[b.arg(0), b.arg(1)]);
        let out = b.mul(r, Value::int(2));
        b.ret(Some(out));
        let top = m.push(b.finish());

        let before = run(&m, top, 4, 9);
        assert_eq!(before, (5 + 5) * 2);
        // Inline mid into top, then the two leaf calls that arrive with it.
        let n = inline_all(&mut m, top, 100_000);
        assert_eq!(n, 3);
        verify_module(&m).unwrap();
        assert_eq!(run(&m, top, 4, 9), before);
    }

    #[test]
    fn recursion_is_rejected() {
        let mut m = Module::new("t");
        // f(x) = f(x) (non-terminating, but we only inline)
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let placeholder = FuncId(0);
        let r = b.call(placeholder, Type::I64, &[b.arg(0)]);
        b.ret(Some(r));
        let f = m.push(b.finish());
        assert_eq!(f, placeholder);
        let site = m.func(f).block(BlockId(0)).insts[0];
        assert_eq!(
            inline_call(&mut m, f, site),
            Err(InlineError::Recursive(f))
        );
        assert_eq!(inline_all(&mut m, f, 10_000), 0);
    }

    #[test]
    fn not_a_call_is_rejected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let v = b.add(b.arg(0), Value::int(1));
        b.ret(Some(v));
        let f = m.push(b.finish());
        let site = v.as_inst().unwrap();
        assert_eq!(
            inline_call(&mut m, f, site),
            Err(InlineError::NotACall(site))
        );
    }

    #[test]
    fn void_callee_inlines_without_phi() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("bump", &[Type::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Type::I64, p);
        let v2 = b.add(v, Value::int(1));
        b.store(v2, p);
        b.ret(None);
        let callee = m.push(b.finish());
        let mut b = FunctionBuilder::new("main", &[], Some(Type::I64));
        b.call(callee, Type::I64, &[Value::ptr(8)]);
        let r = b.load(Type::I64, Value::ptr(8));
        b.ret(Some(r));
        let main = m.push(b.finish());
        inline_all(&mut m, main, 1000);
        verify_module(&m).unwrap();
        let mut mem = Memory::new();
        let out = Interp::new(&m)
            .run(main, &[], &mut mem, &mut NullSink)
            .unwrap();
        assert_eq!(out.unwrap().as_int(), 1);
    }
}
