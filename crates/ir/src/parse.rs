//! Parsing of the textual IR produced by [`crate::print`].
//!
//! The parser accepts exactly the printer's syntax, so `parse(print(f))`
//! round-trips any function (instruction ids are renumbered densely).
//! Useful for writing tests and examples as IR text.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{CmpOp, Inst, Op, Terminator};
use crate::module::{BlockId, FuncId, Function, InstId, Module, Type, Value};

/// A parse failure with its (1-based) line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the failure occurred (0 for empty input).
    pub line: usize,
    /// Column of the offending token (1-based; 0 when unknown).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col: 0,
        message: message.into(),
    })
}

/// Best-effort column recovery: most messages quote the offending token
/// (`{tok:?}`); find that token in the failing line.
fn fill_col(text: &str, mut e: ParseError) -> ParseError {
    if e.col != 0 || e.line == 0 {
        return e;
    }
    let Some(line) = text.lines().nth(e.line - 1) else {
        return e;
    };
    if let Some(start) = e.message.find('"') {
        if let Some(len) = e.message[start + 1..].find('"') {
            let tok = &e.message[start + 1..start + 1 + len];
            if !tok.is_empty() {
                if let Some(pos) = line.find(tok) {
                    e.col = pos + 1;
                }
            }
        }
    }
    e
}

/// Hard cap on block ids: a forged label like `bb999999999:` must not
/// make the parser allocate a billion filler blocks.
const MAX_BLOCK_ID: u32 = 65_535;

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "i1" => Ok(Type::I1),
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        other => err(line, format!("unknown type {other:?}")),
    }
}

fn parse_cmp(s: &str, line: usize) -> Result<CmpOp, ParseError> {
    match s {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => err(line, format!("unknown predicate {other:?}")),
    }
}

struct Parser {
    /// printed inst id -> dense arena id
    ids: HashMap<u32, InstId>,
    /// Parameter count of the function being parsed (for `%argN`
    /// range checking).
    num_params: u32,
}

impl Parser {
    fn value(&self, tok: &str, line: usize) -> Result<Value, ParseError> {
        let tok = tok.trim().trim_end_matches(',');
        if let Some(rest) = tok.strip_prefix("%arg") {
            let n: u32 = rest
                .parse()
                .or_else(|_| err(line, format!("bad argument {tok:?}")))?;
            if n >= self.num_params {
                return err(
                    line,
                    format!(
                        "argument {tok:?} out of range (function has {} parameter(s))",
                        self.num_params
                    ),
                );
            }
            return Ok(Value::Arg(n));
        }
        if let Some(rest) = tok.strip_prefix('%') {
            let printed: u32 = rest
                .parse()
                .or_else(|_| err(line, format!("bad value {tok:?}")))?;
            return match self.ids.get(&printed) {
                Some(id) => Ok(Value::Inst(*id)),
                None => err(line, format!("use of undefined %{printed}")),
            };
        }
        if let Some(rest) = tok.strip_prefix("@0x") {
            let addr = u64::from_str_radix(rest, 16)
                .or_else(|_| err(line, format!("bad pointer {tok:?}")))?;
            return Ok(Value::ptr(addr));
        }
        if tok.contains('.') || tok.contains("inf") || tok.contains("NaN") {
            let f: f64 = tok
                .parse()
                .or_else(|_| err(line, format!("bad float {tok:?}")))?;
            return Ok(Value::float(f));
        }
        let i: i64 = tok
            .parse()
            .or_else(|_| err(line, format!("bad constant {tok:?}")))?;
        Ok(Value::int(i))
    }

    fn block(tok: &str, line: usize) -> Result<BlockId, ParseError> {
        let tok = tok.trim().trim_end_matches(',').trim_end_matches(':');
        match tok.strip_prefix("bb").and_then(|r| r.parse::<u32>().ok()) {
            Some(n) => Ok(BlockId(n)),
            None => err(line, format!("bad block {tok:?}")),
        }
    }
}

/// Parse a single function in the printer's syntax.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line (and, best-effort,
/// column). Malformed input of any shape yields an error, never a
/// panic or unbounded allocation.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    parse_function_inner(text).map_err(|e| fill_col(text, e))
}

fn parse_function_inner(text: &str) -> Result<Function, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("; module"));

    // Header: fn @name(ty %arg0, ...) -> ret {
    let (hline, header) = lines.next().ok_or(ParseError {
        line: 0,
        col: 0,
        message: "empty input".into(),
    })?;
    let header = header.strip_prefix("fn @").ok_or(ParseError {
        line: hline,
        col: 0,
        message: "expected `fn @name(...)`".into(),
    })?;
    let open = header.find('(').ok_or(ParseError {
        line: hline,
        col: 0,
        message: "missing `(`".into(),
    })?;
    let close = header.rfind(')').ok_or(ParseError {
        line: hline,
        col: 0,
        message: "missing `)`".into(),
    })?;
    if close < open {
        return err(hline, "`)` precedes `(` in function header");
    }
    let name = &header[..open];
    let params: Vec<Type> = header[open + 1..close]
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| parse_type(p.split_whitespace().next().unwrap_or(""), hline))
        .collect::<Result<_, _>>()?;
    let ret_s = header[close + 1..]
        .trim()
        .trim_start_matches("->")
        .trim()
        .trim_end_matches('{')
        .trim();
    let ret = if ret_s == "void" {
        None
    } else {
        Some(parse_type(ret_s, hline)?)
    };

    let mut func = Function::new(name, &params, ret);
    let mut parser = Parser {
        ids: HashMap::new(),
        num_params: params.len() as u32,
    };
    let mut cur: Option<BlockId> = None;
    // Block ids that appeared as labels (vs. filler blocks synthesized
    // below a larger label) — a label may define each block only once.
    let mut labeled: std::collections::HashSet<u32> = std::collections::HashSet::new();
    // Branch/φ block references, validated against the final block
    // count once the whole body is parsed.
    let mut block_refs: Vec<(usize, BlockId)> = Vec::new();
    // Deferred φ operands (they may forward-reference instructions):
    // (φ inst, arg slot, named incomings).
    type PendingPhi = (InstId, usize, Vec<(String, BlockId)>);
    let mut pending_phis: Vec<PendingPhi> = Vec::new();

    for (ln, line) in lines {
        if line == "}" {
            break;
        }
        if let Some(rest) = line.strip_prefix("bb") {
            if rest.contains(':') {
                let id = Parser::block(line.split(':').next().unwrap_or(""), ln)?;
                if id.0 > MAX_BLOCK_ID {
                    return err(ln, format!("block id bb{} exceeds limit {MAX_BLOCK_ID}", id.0));
                }
                if !labeled.insert(id.0) {
                    return err(ln, format!("duplicate label bb{}", id.0));
                }
                while func.num_blocks() <= id.index() {
                    func.add_block(format!("bb{}", func.num_blocks()));
                }
                if let Some(label) = line.split(';').nth(1) {
                    func.block_mut(id).name = label.trim().to_string();
                }
                cur = Some(id);
                continue;
            }
        }
        let bb = cur.ok_or(ParseError {
            line: ln,
            col: 0,
            message: "instruction outside a block".into(),
        })?;

        // Terminators.
        if let Some(rest) = line.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            func.block_mut(bb).term = match parts.as_slice() {
                [t] => {
                    let t = Parser::block(t, ln)?;
                    block_refs.push((ln, t));
                    Terminator::Br(t)
                }
                [c, t, e] => {
                    let (t, e2) = (Parser::block(t, ln)?, Parser::block(e, ln)?);
                    block_refs.push((ln, t));
                    block_refs.push((ln, e2));
                    Terminator::CondBr {
                        cond: parser.value(c, ln)?,
                        then_bb: t,
                        else_bb: e2,
                    }
                }
                _ => return err(ln, "malformed br"),
            };
            continue;
        }
        if let Some(rest) = line.strip_prefix("ret") {
            let rest = rest.trim();
            func.block_mut(bb).term = if rest == "void" || rest.is_empty() {
                Terminator::Ret(None)
            } else {
                Terminator::Ret(Some(parser.value(rest, ln)?))
            };
            continue;
        }
        if line == "unreachable" {
            func.block_mut(bb).term = Terminator::Unreachable;
            continue;
        }
        if let Some(rest) = line.strip_prefix("store ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            let [v, p] = parts.as_slice() else {
                return err(ln, "malformed store");
            };
            let val = parser.value(v, ln)?;
            let ptr = parser.value(p, ln)?;
            let ty = match val {
                Value::Const(c) => c.ty(),
                _ => Type::I64,
            };
            func.push_inst(
                bb,
                Inst {
                    op: Op::Store,
                    ty,
                    args: vec![val, ptr],
                    phi_blocks: Vec::new(),
                    imm: 0,
                },
            );
            continue;
        }

        // `%N = ...`
        let Some((lhs, rhs)) = line.split_once('=') else {
            return err(ln, format!("unrecognised line {line:?}"));
        };
        let printed: u32 = lhs
            .trim()
            .strip_prefix('%')
            .and_then(|s| s.parse().ok())
            .ok_or(ParseError {
                line: ln,
                col: 0,
                message: format!("bad lhs {lhs:?}"),
            })?;
        if parser.ids.contains_key(&printed) {
            return err(ln, format!("redefinition of %{printed}"));
        }
        let rhs = rhs.trim();
        let mut toks = rhs.split_whitespace();
        let mnemonic = toks.next().unwrap_or("");
        let inst = match mnemonic {
            "phi" => {
                let ty = parse_type(toks.next().unwrap_or(""), ln)?;
                // [v, bbN], [v, bbM] ... — defer value resolution.
                let rest: String = rhs
                    .splitn(3, ' ')
                    .nth(2)
                    .unwrap_or("")
                    .to_string();
                let mut incomings = Vec::new();
                for part in rest.split(']') {
                    let part = part.trim().trim_start_matches(',').trim();
                    let Some(body) = part.strip_prefix('[') else {
                        continue;
                    };
                    let (v, b) = body.split_once(',').ok_or(ParseError {
                        line: ln,
                        col: 0,
                        message: "malformed phi incoming".into(),
                    })?;
                    let b = Parser::block(b, ln)?;
                    block_refs.push((ln, b));
                    incomings.push((v.trim().to_string(), b));
                }
                let id = func.push_inst(bb, Inst::phi(ty, &[]));
                func.inst_mut(id).ty = ty;
                pending_phis.push((id, ln, incomings));
                parser.ids.insert(printed, id);
                continue;
            }
            "icmp" | "fcmp" => {
                let pred = parse_cmp(toks.next().unwrap_or(""), ln)?;
                let args: Vec<Value> = toks
                    .map(|t| parser.value(t, ln))
                    .collect::<Result<_, _>>()?;
                let op = if mnemonic == "icmp" {
                    Op::ICmp(pred)
                } else {
                    Op::FCmp(pred)
                };
                Inst {
                    op,
                    ty: Type::I1,
                    args,
                    phi_blocks: Vec::new(),
                    imm: 0,
                }
            }
            "gep" => {
                // gep base, index, scale N
                let rest: String = rhs.split_once(' ').map(|x| x.1).unwrap_or("").to_string();
                let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
                let [base, index, scale] = parts.as_slice() else {
                    return err(ln, "malformed gep");
                };
                let imm: i64 = scale
                    .trim_start_matches("scale")
                    .trim()
                    .parse()
                    .or_else(|_| err(ln, "bad gep scale"))?;
                Inst {
                    op: Op::Gep,
                    ty: Type::Ptr,
                    args: vec![parser.value(base, ln)?, parser.value(index, ln)?],
                    phi_blocks: Vec::new(),
                    imm,
                }
            }
            "call" => {
                // call @fN(args)
                let rest = rhs.split_once(' ').map(|x| x.1).unwrap_or("");
                let open = rest.find('(').ok_or(ParseError {
                    line: ln,
                    col: 0,
                    message: "malformed call".into(),
                })?;
                let callee: u32 = rest[..open]
                    .trim()
                    .strip_prefix("@f")
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError {
                        line: ln,
                        col: 0,
                        message: format!("bad callee in {rest:?}"),
                    })?;
                let close = match rest.rfind(')') {
                    Some(c) if c >= open => c,
                    Some(_) => return err(ln, "`)` precedes `(` in call"),
                    None => rest.len(),
                };
                let args: Vec<Value> = rest[open + 1..close]
                    .split(',')
                    .filter(|a| !a.trim().is_empty())
                    .map(|a| parser.value(a, ln))
                    .collect::<Result<_, _>>()?;
                Inst {
                    op: Op::Call(FuncId(callee)),
                    ty: Type::I64,
                    args,
                    phi_blocks: Vec::new(),
                    imm: 0,
                }
            }
            m => {
                let op = match m {
                    "add" => Op::Add,
                    "sub" => Op::Sub,
                    "mul" => Op::Mul,
                    "div" => Op::Div,
                    "rem" => Op::Rem,
                    "and" => Op::And,
                    "or" => Op::Or,
                    "xor" => Op::Xor,
                    "shl" => Op::Shl,
                    "shr" => Op::Shr,
                    "fadd" => Op::FAdd,
                    "fsub" => Op::FSub,
                    "fmul" => Op::FMul,
                    "fdiv" => Op::FDiv,
                    "fsqrt" => Op::FSqrt,
                    "select" => Op::Select,
                    "itof" => Op::IToF,
                    "ftoi" => Op::FToI,
                    "load" => Op::Load,
                    other => return err(ln, format!("unknown op {other:?}")),
                };
                let ty = parse_type(toks.next().unwrap_or(""), ln)?;
                let args: Vec<Value> = toks
                    .map(|t| parser.value(t, ln))
                    .collect::<Result<_, _>>()?;
                Inst {
                    op,
                    ty,
                    args,
                    phi_blocks: Vec::new(),
                    imm: 0,
                }
            }
        };
        let id = func.push_inst(bb, inst);
        parser.ids.insert(printed, id);
    }

    // Every branch/φ target must name a block that exists by the end
    // of the body.
    for (ln, b) in block_refs {
        if b.index() >= func.num_blocks() {
            return err(ln, format!("reference to undefined block bb{}", b.0));
        }
    }

    // Resolve deferred φ incomings.
    for (id, ln, incomings) in pending_phis {
        let mut args = Vec::with_capacity(incomings.len());
        let mut blocks = Vec::with_capacity(incomings.len());
        for (v, b) in incomings {
            args.push(parser.value(&v, ln)?);
            blocks.push(b);
        }
        let inst = func.inst_mut(id);
        inst.args = args;
        inst.phi_blocks = blocks;
    }
    Ok(func)
}

/// Parse a whole module (a `; module NAME` header followed by functions).
///
/// # Errors
/// Returns the first [`ParseError`].
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let name = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("; module "))
        .unwrap_or("parsed")
        .to_string();
    let mut module = Module::new(name);
    let mut depth = 0usize;
    let mut chunk = String::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("fn @") {
            depth = 1;
            chunk.clear();
            chunk.push_str(line);
            chunk.push('\n');
            continue;
        }
        if depth > 0 {
            chunk.push_str(line);
            chunk.push('\n');
            if t == "}" {
                module.push(parse_function(&chunk)?);
                depth = 0;
            }
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::Constant;
    use crate::interp::{Interp, Memory, NullSink};
    use crate::print::{function_to_string, module_to_string};
    use crate::verify::verify_function;

    fn sample() -> Function {
        let mut fb = FunctionBuilder::new("roundtrip", &[Type::I64, Type::Ptr], Some(Type::I64));
        let entry = fb.entry();
        let t = fb.block("taken");
        let e = fb.block("fall");
        let m = fb.block("merge");
        fb.switch_to(entry);
        let addr = fb.gep(fb.arg(1), fb.arg(0), 8);
        let v = fb.load(Type::I64, addr);
        let c = fb.icmp_ne(v, Value::int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let a = fb.add(v, Value::int(1));
        fb.store(a, addr);
        fb.br(m);
        fb.switch_to(e);
        let fzero = fb.fadd(Value::float(1.5), Value::float(2.5));
        let fi = fb.ftoi(fzero);
        fb.br(m);
        fb.switch_to(m);
        let p = fb.phi(Type::I64, &[(t, a), (e, fi)]);
        let s = fb.select(Type::I64, c, p, Value::int(-1));
        fb.ret(Some(s));
        fb.finish()
    }

    #[test]
    fn print_parse_roundtrip_is_stable() {
        let f = sample();
        let text = function_to_string(&f);
        let parsed = parse_function(&text).unwrap();
        verify_function(&parsed, None).unwrap();
        // Printing the parsed function again yields identical text.
        assert_eq!(function_to_string(&parsed), text);
    }

    #[test]
    fn parsed_function_behaves_identically() {
        let f = sample();
        let parsed = parse_function(&function_to_string(&f)).unwrap();
        let mut m1 = Module::new("a");
        let id1 = m1.push(f);
        let mut m2 = Module::new("b");
        let id2 = m2.push(parsed);
        for x in [0i64, 3, -2] {
            let mut mem1 = Memory::new();
            mem1.store(64 + 8 * x.unsigned_abs(), crate::interp::Val::Int(x));
            let mut mem2 = mem1.clone();
            let a = Interp::new(&m1)
                .run(id1, &[Constant::Int(x), Constant::Ptr(64)], &mut mem1, &mut NullSink)
                .unwrap();
            let b = Interp::new(&m2)
                .run(id2, &[Constant::Int(x), Constant::Ptr(64)], &mut mem2, &mut NullSink)
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parse_module_handles_multiple_functions() {
        let mut fb = FunctionBuilder::new("one", &[], Some(Type::I64));
        fb.ret(Some(Value::int(1)));
        let f1 = fb.finish();
        let mut m = Module::new("multi");
        let c1 = m.push(f1);
        let mut fb = FunctionBuilder::new("two", &[], Some(Type::I64));
        let r = fb.call(c1, Type::I64, &[]);
        let r2 = fb.add(r, Value::int(1));
        fb.ret(Some(r2));
        m.push(fb.finish());
        let text = module_to_string(&m);
        let parsed = parse_module(&text).unwrap();
        assert_eq!(parsed.funcs.len(), 2);
        assert_eq!(parsed.name, "multi");
        assert_eq!(module_to_string(&parsed), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "fn @f() -> i64 {\nbb0: ; entry\n  %0 = frobnicate i64 1, 2\n  ret %0\n}";
        let e = parse_function(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        let bad2 = "fn @f() -> i64 {\nbb0: ; e\n  ret %9\n}";
        let e2 = parse_function(bad2).unwrap_err();
        assert!(e2.message.contains("undefined"));
    }
}
