//! A deterministic IR interpreter with pluggable execution tracing.
//!
//! The interpreter is the "hardware" that runs workloads during profiling:
//! the Ball-Larus profiler, edge profiler, and the host timing model all
//! consume the [`TraceSink`] event stream instead of instrumenting the IR.
//! This mirrors how Needle's LLVM instrumentation observes execution while
//! keeping the workload IR unchanged.
//!
//! Two execution engines sit behind one API:
//!
//! * [`Interp::run`] / [`Interp::run_with`] execute through the pre-decoded
//!   engine ([`crate::engine`]): the module is lowered once into a flat
//!   instruction stream with direct register slots, per-edge φ-move lists
//!   and per-block step costs, and executed with monomorphized sink
//!   dispatch and recycled register frames.
//! * [`Interp::run_reference`] is the original tree walker, kept as the
//!   differential baseline: same results, same trace events, same step
//!   counts, same errors — `tests/engine_differential.rs` holds the two to
//!   bit-equivalence over the whole workload suite.

use std::cell::{Cell, OnceCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::engine::{Engine, ExecCtx, FramePool};
use crate::inst::{Op, Terminator};
use crate::module::{BlockId, Constant, FuncId, Function, InstId, Module, Type, Value};

pub use crate::mem::{CapExceeded, MemDelta, MemSnapshot, Memory};

/// Enable/disable a deliberate decode-time fusion bug on the *current
/// thread*: while set, the engine's GepLoadAdd peephole records the load's
/// own register as the accumulator operand, so the flat engine computes
/// `v + v` where the reference walker computes `acc + v`. Exists solely to
/// validate the fuzzing subsystem's catch-and-shrink loop end to end
/// against a realistic decode-time divergence; it only affects engines
/// decoded (first run of an [`Interp`]) after the flag is set.
pub fn set_fusion_fault_injection(on: bool) {
    crate::engine::set_break_gep_load_add(on);
}

/// A runtime value. Pointers are carried as integers (byte addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Integer, boolean (0/1) or pointer payload.
    Int(i64),
    /// Floating-point payload.
    Float(f64),
}

impl Val {
    /// Integer payload; truncates floats (used by `ftoi`).
    pub fn as_int(self) -> i64 {
        match self {
            Val::Int(v) => v,
            Val::Float(v) => v as i64,
        }
    }

    /// Float payload; converts integers (used by `itof`).
    pub fn as_float(self) -> f64 {
        match self {
            Val::Int(v) => v as f64,
            Val::Float(v) => v,
        }
    }

    /// Boolean view: any non-zero integer is true.
    pub fn as_bool(self) -> bool {
        self.as_int() != 0
    }

    /// Raw 64-bit encoding used by [`Memory`].
    pub fn to_bits(self) -> u64 {
        match self {
            Val::Int(v) => v as u64,
            Val::Float(v) => v.to_bits(),
        }
    }

    /// Decode raw bits as a value of type `ty`.
    pub fn from_bits(bits: u64, ty: Type) -> Val {
        match ty {
            Type::F64 => Val::Float(f64::from_bits(bits)),
            _ => Val::Int(bits as i64),
        }
    }
}

impl From<Constant> for Val {
    fn from(c: Constant) -> Val {
        match c {
            Constant::Int(v) => Val::Int(v),
            Constant::Float(v) => Val::Float(v),
            Constant::Ptr(v) => Val::Int(v as i64),
        }
    }
}

/// Evaluate a pure (non-memory, non-call, non-φ) operation on resolved
/// values. Returns `None` for ops with side effects or control semantics.
///
/// This is the single source of truth for operator semantics: the
/// interpreter and the frame executor both call it, so offloaded frames
/// cannot diverge from host execution.
pub fn eval_pure(op: Op, args: &[Val], imm: i64) -> Option<Val> {
    let v = match op {
        Op::Add => Val::Int(args[0].as_int().wrapping_add(args[1].as_int())),
        Op::Sub => Val::Int(args[0].as_int().wrapping_sub(args[1].as_int())),
        Op::Mul => Val::Int(args[0].as_int().wrapping_mul(args[1].as_int())),
        Op::Div => {
            let b = args[1].as_int();
            Val::Int(if b == 0 { 0 } else { args[0].as_int().wrapping_div(b) })
        }
        Op::Rem => {
            let b = args[1].as_int();
            Val::Int(if b == 0 { 0 } else { args[0].as_int().wrapping_rem(b) })
        }
        Op::And => Val::Int(args[0].as_int() & args[1].as_int()),
        Op::Or => Val::Int(args[0].as_int() | args[1].as_int()),
        Op::Xor => Val::Int(args[0].as_int() ^ args[1].as_int()),
        Op::Shl => Val::Int(args[0].as_int().wrapping_shl(args[1].as_int() as u32 & 63)),
        Op::Shr => Val::Int(args[0].as_int().wrapping_shr(args[1].as_int() as u32 & 63)),
        Op::FAdd => Val::Float(args[0].as_float() + args[1].as_float()),
        Op::FSub => Val::Float(args[0].as_float() - args[1].as_float()),
        Op::FMul => Val::Float(args[0].as_float() * args[1].as_float()),
        Op::FDiv => {
            let b = args[1].as_float();
            Val::Float(if b == 0.0 { 0.0 } else { args[0].as_float() / b })
        }
        Op::FSqrt => Val::Float(args[0].as_float().abs().sqrt()),
        Op::ICmp(p) => Val::Int(p.eval(args[0].as_int().cmp(&args[1].as_int())) as i64),
        Op::FCmp(p) => {
            let ord = args[0]
                .as_float()
                .partial_cmp(&args[1].as_float())
                .unwrap_or(std::cmp::Ordering::Equal);
            Val::Int(p.eval(ord) as i64)
        }
        Op::Select => {
            if args[0].as_bool() {
                args[1]
            } else {
                args[2]
            }
        }
        Op::IToF => Val::Float(args[0].as_int() as f64),
        Op::FToI => Val::Int(args[0].as_float() as i64),
        Op::Gep => Val::Int(args[0].as_int().wrapping_add(args[1].as_int().wrapping_mul(imm))),
        Op::Load | Op::Store | Op::Call(_) | Op::Phi => return None,
    };
    Some(v)
}

/// A shareable cooperative-cancellation flag.
///
/// Hand a clone to [`Interp::with_cancel`] (or wrap an existing flag with
/// [`CancelToken::from_flag`]) and call [`CancelToken::cancel`] from any
/// thread: the run observes the flag at its next cancellation checkpoint —
/// every `cancel_interval` interpreter steps — and stops with
/// [`ExecError::Cancelled`]. Both execution engines check at identical
/// step boundaries, including *inside* fused superinstructions, so the
/// flat engine and the reference walker report bit-identical cut points.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Wrap an existing shared flag (e.g. a supervisor's per-attempt
    /// cancel bit) so setting that flag cancels engine runs too.
    pub fn from_flag(flag: Arc<AtomicBool>) -> CancelToken {
        CancelToken(flag)
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The combined step budget and cancellation countdown, threaded by value
/// through both execution engines so their accounting cannot drift.
///
/// Every interpreter step pays one [`Fuel::tick`]: budget check first
/// (`StepLimit` wins when both would fire on the same step), then — every
/// `interval` steps — a load of the [`CancelToken`]. With a token set and
/// interval `k`, a run cancelled before it starts executes exactly `k`
/// steps and fails *before* step `k + 1`, attributed to the instruction
/// (or terminator) that step would have executed. Without a token the
/// countdown starts at `u64::MAX` and the checkpoint branch never fires.
#[derive(Debug)]
pub(crate) struct Fuel<'t> {
    /// Remaining step budget.
    budget: u64,
    /// Steps until the next cancellation checkpoint.
    cancel_left: u64,
    /// The configured ceiling (reported in [`ExecError::StepLimit`]).
    max_steps: u64,
    /// Checkpoint period (≥ 1).
    interval: u64,
    /// The flag polled at checkpoints.
    token: Option<&'t CancelToken>,
}

impl<'t> Fuel<'t> {
    pub(crate) fn new(max_steps: u64, token: Option<&'t CancelToken>, interval: u64) -> Fuel<'t> {
        let interval = interval.max(1);
        Fuel {
            budget: max_steps,
            cancel_left: if token.is_some() { interval } else { u64::MAX },
            max_steps,
            interval,
            token,
        }
    }

    /// Steps consumed so far (published as [`Interp::steps`] on success).
    pub(crate) fn used(&self) -> u64 {
        self.max_steps - self.budget
    }

    /// Account one walker step about to execute instruction `at` of
    /// `func` (`None` = a terminator step, which has no id of its own).
    #[inline(always)]
    pub(crate) fn tick(&mut self, func: FuncId, at: Option<InstId>) -> Result<(), ExecError> {
        if self.budget == 0 {
            return Err(ExecError::StepLimit(self.max_steps));
        }
        if self.cancel_left == 0 {
            self.checkpoint(func, at)?;
        }
        self.budget -= 1;
        self.cancel_left -= 1;
        Ok(())
    }

    /// The rare checkpoint leg of [`Fuel::tick`], outlined so the hot path
    /// stays a decrement and two compares.
    #[cold]
    #[inline(never)]
    fn checkpoint(&mut self, func: FuncId, at: Option<InstId>) -> Result<(), ExecError> {
        if let Some(t) = self.token {
            if t.is_cancelled() {
                return Err(ExecError::Cancelled(func, at));
            }
        }
        self.cancel_left = self.interval;
        Ok(())
    }

    /// Try to debit a whole block of `cost` steps at once (the flat
    /// engine's batched accounting). Succeeds only when neither the budget
    /// nor the cancellation countdown can fire inside the block, so
    /// batching never skips a checkpoint the per-step path would take —
    /// after a successful batch both engines hold identical fuel state.
    #[inline(always)]
    pub(crate) fn try_batch(&mut self, cost: u64) -> bool {
        if self.budget >= cost && self.cancel_left >= cost {
            self.budget -= cost;
            self.cancel_left -= cost;
            true
        } else {
            false
        }
    }
}

/// Receiver of execution events. All methods default to no-ops, so sinks
/// implement only what they need.
pub trait TraceSink {
    /// A function invocation begins.
    fn enter(&mut self, _func: FuncId) {}
    /// A function invocation returns.
    fn exit(&mut self, _func: FuncId) {}
    /// Execution enters basic block `bb` of `func` (including the entry
    /// block at invocation start).
    fn block(&mut self, _func: FuncId, _bb: BlockId) {}
    /// A control-flow edge `from -> to` is traversed inside `func`.
    fn edge(&mut self, _func: FuncId, _from: BlockId, _to: BlockId) {}
    /// A memory access at `addr` by instruction `inst`.
    fn mem(&mut self, _func: FuncId, _inst: InstId, _addr: u64, _is_store: bool) {}
}

/// A sink that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Counts dynamic block executions per function.
///
/// Block ids are dense per-function indices, so the counters are plain
/// `Vec<u64>`s grown on demand — a bump is two bounds checks and an add,
/// not a hash of `(FuncId, BlockId)`.
#[derive(Debug, Default, Clone)]
pub struct BlockCountSink {
    /// `counts[func][block] = dynamic execution count`.
    counts: Vec<Vec<u64>>,
}

impl TraceSink for BlockCountSink {
    fn block(&mut self, func: FuncId, bb: BlockId) {
        let f = func.index();
        if self.counts.len() <= f {
            self.counts.resize_with(f + 1, Vec::new);
        }
        let per = &mut self.counts[f];
        let b = bb.index();
        if per.len() <= b {
            per.resize(b + 1, 0);
        }
        per[b] += 1;
    }
}

impl BlockCountSink {
    /// Dynamic execution count of block `bb` in `func` (0 if never entered).
    pub fn count(&self, func: FuncId, bb: BlockId) -> u64 {
        self.counts
            .get(func.index())
            .and_then(|per| per.get(bb.index()))
            .copied()
            .unwrap_or(0)
    }

    /// All `((func, block), count)` pairs with a non-zero count.
    pub fn iter(&self) -> impl Iterator<Item = ((FuncId, BlockId), u64)> + '_ {
        self.counts.iter().enumerate().flat_map(|(f, per)| {
            per.iter().enumerate().filter(|(_, n)| **n != 0).map(
                move |(b, n)| ((FuncId(f as u32), BlockId(b as u32)), *n),
            )
        })
    }

    /// Dynamic instruction count of `func` given its static block sizes.
    pub fn dynamic_insts(&self, module: &Module, func: FuncId) -> u64 {
        let Some(per) = self.counts.get(func.index()) else {
            return 0;
        };
        per.iter()
            .enumerate()
            .map(|(b, n)| n * module.func(func).block(BlockId(b as u32)).insts.len() as u64)
            .sum()
    }
}

/// Fan-out sink: forwards every event to both inner sinks.
#[derive(Debug)]
pub struct TeeSink<'a, A: ?Sized, B: ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink + ?Sized, B: TraceSink + ?Sized> TraceSink for TeeSink<'_, A, B> {
    fn enter(&mut self, func: FuncId) {
        self.0.enter(func);
        self.1.enter(func);
    }
    fn exit(&mut self, func: FuncId) {
        self.0.exit(func);
        self.1.exit(func);
    }
    fn block(&mut self, func: FuncId, bb: BlockId) {
        self.0.block(func, bb);
        self.1.block(func, bb);
    }
    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.0.edge(func, from, to);
        self.1.edge(func, from, to);
    }
    fn mem(&mut self, func: FuncId, inst: InstId, addr: u64, is_store: bool) {
        self.0.mem(func, inst, addr, is_store);
        self.1.mem(func, inst, addr, is_store);
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The dynamic step budget was exhausted (runaway loop guard).
    StepLimit(u64),
    /// Call nesting exceeded the depth limit.
    CallDepth(usize),
    /// A block with an [`Terminator::Unreachable`] terminator was executed.
    ReachedUnreachable(FuncId, BlockId),
    /// A φ had no incoming entry for the dynamic predecessor.
    PhiMissingIncoming(FuncId, InstId),
    /// An instruction read a value that was never defined (verifier escape).
    /// For reads inside a block body (and φ moves) the id is the *reading*
    /// instruction; for terminator operands — which have no id of their own
    /// — it is the undefined value's *defining* instruction.
    UndefinedValue(FuncId, InstId),
    /// An op that should be pure had memory/control semantics (verifier
    /// escape; previously a panic).
    MalformedOp(FuncId, InstId),
    /// A store needed a fresh memory page beyond the configured page cap
    /// (resource governor). Attributed to the storing instruction; for a
    /// fused gep+store superinstruction that is the original store's id in
    /// both engines.
    MemLimit(FuncId, InstId),
    /// An instruction read argument `n` of a function invoked with fewer
    /// than `n + 1` arguments (the verifier checks indices against the
    /// signature, not call sites; previously an index panic).
    MissingArgument(FuncId, u32),
    /// The module could not be decoded for the flat engine because a
    /// function's packed operand space overflowed (more than `u32::MAX`
    /// slots; previously a decode-time panic).
    ModuleTooLarge(FuncId),
    /// The run observed its [`CancelToken`] at a cancellation checkpoint
    /// and stopped cooperatively. Attributed to the instruction the
    /// cancelled step would have executed — `Some(id)` for a body
    /// instruction (including each constituent of a fused
    /// superinstruction), `None` for a terminator step, which has no id of
    /// its own. Both engines report identical attribution.
    Cancelled(FuncId, Option<InstId>),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            ExecError::CallDepth(n) => write!(f, "call depth limit of {n} exceeded"),
            ExecError::ReachedUnreachable(func, bb) => {
                write!(f, "reached unreachable terminator in func {func:?} {bb}")
            }
            ExecError::PhiMissingIncoming(func, inst) => {
                write!(f, "phi {inst} in func {func:?} missing incoming value")
            }
            ExecError::UndefinedValue(func, inst) => {
                write!(f, "instruction {inst} in func {func:?} read an undefined value")
            }
            ExecError::MalformedOp(func, inst) => {
                write!(f, "instruction {inst} in func {func:?} is not evaluable as pure")
            }
            ExecError::MemLimit(func, inst) => {
                write!(f, "store {inst} in func {func:?} exceeded the memory page cap")
            }
            ExecError::MissingArgument(func, n) => {
                write!(f, "func {func:?} read missing argument {n}")
            }
            ExecError::ModuleTooLarge(func) => {
                write!(f, "func {func:?} too large to decode (packed operand overflow)")
            }
            ExecError::Cancelled(func, at) => match at {
                Some(inst) => {
                    write!(f, "execution cancelled in func {func:?} before {inst}")
                }
                None => {
                    write!(f, "execution cancelled in func {func:?} before a terminator")
                }
            },
        }
    }
}

impl std::error::Error for ExecError {}

/// The interpreter. Holds per-run limits; borrow of the module is immutable
/// so one `Interp` can run many times. The first run decodes the module
/// into the flat engine form; subsequent runs reuse the decoded code and
/// the recycled register-frame pool.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    /// Maximum dynamic instructions (terminators count as one step).
    pub max_steps: u64,
    /// Maximum call nesting depth.
    pub max_depth: usize,
    /// Maximum resident [`Memory`] pages a run may allocate (resource
    /// governor). `usize::MAX` means uncapped.
    pub max_pages: usize,
    steps: Cell<u64>,
    cancel: Option<CancelToken>,
    cancel_interval: u64,
    engine: OnceCell<Result<Engine, ExecError>>,
    pool: FramePool,
}

impl<'m> Interp<'m> {
    /// An interpreter over `module` with default limits (50M steps, depth 64).
    pub fn new(module: &'m Module) -> Interp<'m> {
        Interp {
            module,
            max_steps: 50_000_000,
            max_depth: 64,
            max_pages: usize::MAX,
            steps: Cell::new(0),
            cancel: None,
            cancel_interval: 1024,
            engine: OnceCell::new(),
            pool: FramePool::default(),
        }
    }

    /// Override the step budget (builder style).
    pub fn with_max_steps(mut self, n: u64) -> Interp<'m> {
        self.max_steps = n;
        self
    }

    /// Override the resident-page cap (builder style). A run that would
    /// allocate a page past the cap fails with [`ExecError::MemLimit`]
    /// instead of allocating.
    pub fn with_max_pages(mut self, n: usize) -> Interp<'m> {
        self.max_pages = n;
        self
    }

    /// Attach (or detach, with `None`) a cooperative [`CancelToken`]
    /// (builder style). A run polls the token every
    /// [`Interp::with_cancel_interval`] steps and stops with
    /// [`ExecError::Cancelled`] once it reads as cancelled.
    pub fn with_cancel(mut self, token: Option<CancelToken>) -> Interp<'m> {
        self.cancel = token;
        self
    }

    /// Override the cancellation checkpoint period (builder style;
    /// default 1024 steps, clamped to ≥ 1). Smaller intervals mean faster
    /// reaction to [`CancelToken::cancel`] at slightly higher per-step
    /// cost.
    pub fn with_cancel_interval(mut self, steps: u64) -> Interp<'m> {
        self.cancel_interval = steps.max(1);
        self
    }

    /// Replace the cancel token on an existing interpreter (long-lived
    /// workers re-arm a warm, already-decoded `Interp` per request).
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Dynamic steps consumed by the most recent successful run.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Execute `func` with `args`, reading/writing `mem` and streaming
    /// events into `sink`. Returns the function result (if non-void).
    ///
    /// This is the dynamic-dispatch convenience wrapper over
    /// [`Interp::run_with`]; hot callers with a concrete sink type should
    /// call `run_with` directly so the event dispatch monomorphizes.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on step/depth exhaustion or malformed IR.
    pub fn run(
        &self,
        func: FuncId,
        args: &[Constant],
        mem: &mut Memory,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<Val>, ExecError> {
        self.run_with(func, args, mem, sink)
    }

    /// Execute through the pre-decoded engine with a statically known sink
    /// type (zero dyn dispatch after monomorphization).
    ///
    /// # Errors
    /// Returns an [`ExecError`] on step/depth exhaustion or malformed IR.
    pub fn run_with<S: TraceSink + ?Sized>(
        &self,
        func: FuncId,
        args: &[Constant],
        mem: &mut Memory,
        sink: &mut S,
    ) -> Result<Option<Val>, ExecError> {
        self.steps.set(0);
        let engine = self
            .engine
            .get_or_init(|| Engine::decode(self.module))
            .as_ref()
            .map_err(Clone::clone)?;
        let ctx = ExecCtx {
            engine,
            pool: &self.pool,
            max_depth: self.max_depth,
            max_pages: self.max_pages,
        };
        let vals: Vec<Val> = args.iter().map(|c| Val::from(*c)).collect();
        let mut fuel = Fuel::new(self.max_steps, self.cancel.as_ref(), self.cancel_interval);
        ctx.call(func, &vals, mem, sink, 0, &mut fuel)
            .inspect(|_| self.steps.set(fuel.used()))
    }

    /// Execute with the original tree-walking interpreter. Kept as the
    /// differential baseline for the pre-decoded engine: results, trace
    /// events, step counts and errors must match [`Interp::run_with`]
    /// exactly.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on step/depth exhaustion or malformed IR.
    pub fn run_reference(
        &self,
        func: FuncId,
        args: &[Constant],
        mem: &mut Memory,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<Val>, ExecError> {
        self.steps.set(0);
        let vals: Vec<Val> = args.iter().map(|c| Val::from(*c)).collect();
        let mut fuel = Fuel::new(self.max_steps, self.cancel.as_ref(), self.cancel_interval);
        self.call(func, &vals, mem, sink, 0, &mut fuel)
            .inspect(|_| self.steps.set(fuel.used()))
    }

    fn call(
        &self,
        func: FuncId,
        args: &[Val],
        mem: &mut Memory,
        sink: &mut dyn TraceSink,
        depth: usize,
        fuel: &mut Fuel<'_>,
    ) -> Result<Option<Val>, ExecError> {
        if depth > self.max_depth {
            return Err(ExecError::CallDepth(self.max_depth));
        }
        let f: &Function = self.module.func(func);
        sink.enter(func);
        let mut regs: Vec<Option<Val>> = vec![None; f.insts.len()];
        let read = |regs: &[Option<Val>], v: Value, at: InstId| -> Result<Val, ExecError> {
            match v {
                Value::Const(c) => Ok(Val::from(c)),
                Value::Arg(n) => args
                    .get(n as usize)
                    .copied()
                    .ok_or(ExecError::MissingArgument(func, n)),
                Value::Inst(id) => regs[id.index()]
                    .ok_or(ExecError::UndefinedValue(func, at)),
            }
        };
        // Terminator operands have no instruction id; attribute an
        // undefined read to the value's defining instruction instead.
        let read_term = |regs: &[Option<Val>], v: Value| -> Result<Val, ExecError> {
            match v {
                Value::Const(c) => Ok(Val::from(c)),
                Value::Arg(n) => args
                    .get(n as usize)
                    .copied()
                    .ok_or(ExecError::MissingArgument(func, n)),
                Value::Inst(id) => regs[id.index()]
                    .ok_or(ExecError::UndefinedValue(func, id)),
            }
        };

        let mut cur = f.entry();
        let mut pred: Option<BlockId> = None;
        loop {
            sink.block(func, cur);
            let block = f.block(cur);

            // φs evaluate simultaneously on block entry.
            let mut phi_vals: Vec<(InstId, Val)> = Vec::new();
            for &iid in &block.insts {
                let inst = f.inst(iid);
                if !inst.is_phi() {
                    break;
                }
                let p = pred.ok_or(ExecError::PhiMissingIncoming(func, iid))?;
                let v = inst
                    .phi_incoming(p)
                    .ok_or(ExecError::PhiMissingIncoming(func, iid))?;
                phi_vals.push((iid, read(&regs, v, iid)?));
            }
            for (iid, v) in phi_vals {
                regs[iid.index()] = Some(v);
            }

            // Straight-line body.
            for &iid in &block.insts {
                let inst = f.inst(iid);
                if inst.is_phi() {
                    continue;
                }
                fuel.tick(func, Some(iid))?;
                let v = match inst.op {
                    Op::Load => {
                        let addr = read(&regs, inst.args[0], iid)?.as_int() as u64;
                        sink.mem(func, iid, addr, false);
                        mem.load(addr, inst.ty)
                    }
                    Op::Store => {
                        let v = read(&regs, inst.args[0], iid)?;
                        let addr = read(&regs, inst.args[1], iid)?.as_int() as u64;
                        sink.mem(func, iid, addr, true);
                        mem.store_capped(addr, v, self.max_pages)
                            .map_err(|CapExceeded| ExecError::MemLimit(func, iid))?;
                        Val::Int(0)
                    }
                    Op::Call(callee) => {
                        let mut call_args = Vec::with_capacity(inst.args.len());
                        for a in &inst.args {
                            call_args.push(read(&regs, *a, iid)?);
                        }
                        self.call(callee, &call_args, mem, sink, depth + 1, fuel)?
                            .unwrap_or(Val::Int(0))
                    }
                    Op::Phi => unreachable!("phis handled on block entry"),
                    pure => {
                        let mut vals = Vec::with_capacity(inst.args.len());
                        for a in &inst.args {
                            vals.push(read(&regs, *a, iid)?);
                        }
                        eval_pure(pure, &vals, inst.imm)
                            .ok_or(ExecError::MalformedOp(func, iid))?
                    }
                };
                regs[iid.index()] = Some(v);
            }

            // Terminator (one step; it has no id of its own).
            fuel.tick(func, None)?;
            let next = match &block.term {
                Terminator::Br(t) => *t,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if read_term(&regs, *cond)?.as_bool() {
                        *then_bb
                    } else {
                        *else_bb
                    }
                }
                Terminator::Ret(v) => {
                    let out = match v {
                        Some(v) => Some(read_term(&regs, *v)?),
                        None => None,
                    };
                    sink.exit(func);
                    return Ok(out);
                }
                Terminator::Unreachable => {
                    return Err(ExecError::ReachedUnreachable(func, cur));
                }
            };
            sink.edge(func, cur, next);
            pred = Some(cur);
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::Value;

    fn loop_sum_module() -> (Module, FuncId) {
        // fn sum(n): s=0; for i in 0..n { s += i }; return s
        let mut b = FunctionBuilder::new("sum", &[Type::I64], Some(Type::I64));
        let entry = b.entry();
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        let n = b.arg(0);
        b.switch_to(entry);
        b.br(head);
        b.switch_to(head);
        // φs created first in the block
        let i = b.phi(Type::I64, &[(entry, Value::int(0))]);
        let s = b.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = b.icmp_slt(i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s2 = b.add(s, i);
        let i2 = b.add(i, Value::int(1));
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        // patch the φs with the loop-carried values
        let i_id = i.as_inst().unwrap();
        let s_id = s.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(body);
        f.inst_mut(s_id).args.push(s2);
        f.inst_mut(s_id).phi_blocks.push(body);
        let mut m = Module::new("t");
        let id = m.push(f);
        (m, id)
    }

    #[test]
    fn loop_sum_computes_triangular_number() {
        let (m, f) = loop_sum_module();
        let mut mem = Memory::new();
        let r = Interp::new(&m)
            .run(f, &[Constant::Int(10)], &mut mem, &mut NullSink)
            .unwrap();
        assert_eq!(r.unwrap().as_int(), 45);
    }

    #[test]
    fn reference_walker_agrees_on_loop_sum() {
        let (m, f) = loop_sum_module();
        let interp = Interp::new(&m);
        let mut mem = Memory::new();
        let fast = interp
            .run(f, &[Constant::Int(10)], &mut mem, &mut NullSink)
            .unwrap();
        let fast_steps = interp.steps();
        let mut mem = Memory::new();
        let slow = interp
            .run_reference(f, &[Constant::Int(10)], &mut mem, &mut NullSink)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast_steps, interp.steps());
    }

    #[test]
    fn step_limit_catches_runaway_loops() {
        let (m, f) = loop_sum_module();
        let mut mem = Memory::new();
        let err = Interp::new(&m)
            .with_max_steps(20)
            .run(f, &[Constant::Int(1_000_000)], &mut mem, &mut NullSink)
            .unwrap_err();
        assert_eq!(err, ExecError::StepLimit(20));
    }

    #[test]
    fn block_counts_track_loop_iterations() {
        let (m, f) = loop_sum_module();
        let mut mem = Memory::new();
        let mut sink = BlockCountSink::default();
        Interp::new(&m)
            .run(f, &[Constant::Int(7)], &mut mem, &mut sink)
            .unwrap();
        assert_eq!(sink.count(f, BlockId(2)), 7); // body
        assert_eq!(sink.count(f, BlockId(1)), 8); // head
        assert_eq!(sink.count(f, BlockId(3)), 1); // exit
        assert_eq!(sink.count(f, BlockId(9)), 0); // absent block
        assert_eq!(sink.iter().count(), 4); // entry, head, body, exit
        assert!(sink.dynamic_insts(&m, f) > 0);
    }

    #[test]
    fn loads_stores_and_calls_work() {
        // callee: fn addone(p): store(load(p)+1, p)
        let mut b = FunctionBuilder::new("addone", &[Type::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Type::I64, p);
        let v2 = b.add(v, Value::int(1));
        b.store(v2, p);
        b.ret(None);
        let callee = b.finish();
        // caller: fn main(): addone(@64); addone(@64); return load(@64)
        let mut m = Module::new("t");
        let callee_id = m.push(callee);
        let mut b = FunctionBuilder::new("main", &[], Some(Type::I64));
        b.call(callee_id, Type::I64, &[Value::ptr(64)]);
        b.call(callee_id, Type::I64, &[Value::ptr(64)]);
        let r = b.load(Type::I64, Value::ptr(64));
        b.ret(Some(r));
        let main_id = m.push(b.finish());

        let mut mem = Memory::new();
        mem.store(64, Val::Int(40));
        let out = Interp::new(&m)
            .run(main_id, &[], &mut mem, &mut NullSink)
            .unwrap();
        assert_eq!(out.unwrap().as_int(), 42);
    }

    #[test]
    fn edge_events_follow_control_flow() {
        #[derive(Default)]
        struct EdgeRec(Vec<(BlockId, BlockId)>);
        impl TraceSink for EdgeRec {
            fn edge(&mut self, _f: FuncId, from: BlockId, to: BlockId) {
                self.0.push((from, to));
            }
        }
        let (m, f) = loop_sum_module();
        let mut mem = Memory::new();
        let mut sink = EdgeRec::default();
        Interp::new(&m)
            .run(f, &[Constant::Int(2)], &mut mem, &mut sink)
            .unwrap();
        assert_eq!(
            sink.0,
            vec![
                (BlockId(0), BlockId(1)),
                (BlockId(1), BlockId(2)),
                (BlockId(2), BlockId(1)),
                (BlockId(1), BlockId(2)),
                (BlockId(2), BlockId(1)),
                (BlockId(1), BlockId(3)),
            ]
        );
    }

    #[test]
    fn undefined_terminator_operand_reports_defining_inst() {
        // entry: cond_br on the result of an instruction that only executes
        // in an unreached block — the error must name that instruction, not
        // a fabricated id.
        let mut b = FunctionBuilder::new("bad", &[], Some(Type::I64));
        let entry = b.entry();
        let other = b.block("other");
        let exit = b.block("exit");
        b.switch_to(other);
        let c = b.icmp_slt(Value::int(0), Value::int(1)); // never executed
        b.br(exit);
        b.switch_to(entry);
        b.cond_br(c, other, exit);
        b.switch_to(exit);
        b.ret(Some(Value::int(0)));
        let mut m = Module::new("t");
        let f = m.push(b.finish());

        let c_id = c.as_inst().unwrap();
        let interp = Interp::new(&m);
        let mut mem = Memory::new();
        let err = interp.run(f, &[], &mut mem, &mut NullSink).unwrap_err();
        assert_eq!(err, ExecError::UndefinedValue(f, c_id));
        let mut mem = Memory::new();
        let err_ref = interp
            .run_reference(f, &[], &mut mem, &mut NullSink)
            .unwrap_err();
        assert_eq!(err_ref, ExecError::UndefinedValue(f, c_id));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = FunctionBuilder::new("d", &[Type::I64], Some(Type::I64));
        let q = b.div(Value::int(10), b.arg(0));
        let r = b.rem(Value::int(10), b.arg(0));
        let s = b.add(q, r);
        b.ret(Some(s));
        let mut m = Module::new("t");
        let f = m.push(b.finish());
        let mut mem = Memory::new();
        let out = Interp::new(&m)
            .run(f, &[Constant::Int(0)], &mut mem, &mut NullSink)
            .unwrap();
        assert_eq!(out.unwrap().as_int(), 0);
    }
}
