//! Ergonomic construction of [`Function`]s.
//!
//! The builder keeps a current insertion block; arithmetic helpers append an
//! instruction there and return its [`Value`]. See the crate-level example.

use crate::inst::{CmpOp, Inst, Op, Terminator};
use crate::module::{BlockId, FuncId, Function, InstId, Type, Value};

/// Incremental builder for a single [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with the given signature. The entry block
    /// exists immediately and is the initial insertion point.
    pub fn new(name: impl Into<String>, params: &[Type], ret: Option<Type>) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name, params, ret),
            cur: BlockId(0),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The `n`-th function argument as a value.
    ///
    /// # Panics
    /// Panics if `n` is out of range for the declared parameters.
    pub fn arg(&self, n: usize) -> Value {
        assert!(n < self.func.params.len(), "argument index out of range");
        Value::Arg(n as u32)
    }

    /// Create a new (empty) block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Move the insertion point to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Append an arbitrary instruction at the insertion point.
    pub fn push(&mut self, inst: Inst) -> Value {
        Value::Inst(self.push_id(inst))
    }

    /// Append an instruction and return its [`InstId`] (rather than value).
    pub fn push_id(&mut self, inst: Inst) -> InstId {
        self.func.push_inst(self.cur, inst)
    }

    // ---- integer arithmetic ------------------------------------------------

    /// `a + b`
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Add, Type::I64, a, b))
    }

    /// `a - b`
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Sub, Type::I64, a, b))
    }

    /// `a * b`
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Mul, Type::I64, a, b))
    }

    /// `a / b` (0 on division by zero)
    pub fn div(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Div, Type::I64, a, b))
    }

    /// `a % b` (0 on rem by zero)
    pub fn rem(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Rem, Type::I64, a, b))
    }

    /// `a & b`
    pub fn and(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::And, Type::I64, a, b))
    }

    /// `a | b`
    pub fn or(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Or, Type::I64, a, b))
    }

    /// `a ^ b`
    pub fn xor(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Xor, Type::I64, a, b))
    }

    /// `a << b`
    pub fn shl(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Shl, Type::I64, a, b))
    }

    /// `a >> b` (arithmetic)
    pub fn shr(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::Shr, Type::I64, a, b))
    }

    // ---- floating point ----------------------------------------------------

    /// `a + b` (float)
    pub fn fadd(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::FAdd, Type::F64, a, b))
    }

    /// `a - b` (float)
    pub fn fsub(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::FSub, Type::F64, a, b))
    }

    /// `a * b` (float)
    pub fn fmul(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::FMul, Type::F64, a, b))
    }

    /// `a / b` (float)
    pub fn fdiv(&mut self, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::FDiv, Type::F64, a, b))
    }

    /// `sqrt(a)`
    pub fn fsqrt(&mut self, a: Value) -> Value {
        self.push(Inst::unary(Op::FSqrt, Type::F64, a))
    }

    /// Integer to float conversion.
    pub fn itof(&mut self, a: Value) -> Value {
        self.push(Inst::unary(Op::IToF, Type::F64, a))
    }

    /// Float to integer conversion (truncating).
    pub fn ftoi(&mut self, a: Value) -> Value {
        self.push(Inst::unary(Op::FToI, Type::I64, a))
    }

    // ---- comparisons -------------------------------------------------------

    /// Integer compare with an arbitrary predicate.
    pub fn icmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::ICmp(op), Type::I1, a, b))
    }

    /// `a == b` (int)
    pub fn icmp_eq(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Eq, a, b)
    }

    /// `a != b` (int)
    pub fn icmp_ne(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Ne, a, b)
    }

    /// `a < b` (signed)
    pub fn icmp_slt(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Lt, a, b)
    }

    /// `a <= b` (signed)
    pub fn icmp_sle(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Le, a, b)
    }

    /// `a > b` (signed)
    pub fn icmp_sgt(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Gt, a, b)
    }

    /// `a >= b` (signed)
    pub fn icmp_sge(&mut self, a: Value, b: Value) -> Value {
        self.icmp(CmpOp::Ge, a, b)
    }

    /// Float compare with an arbitrary predicate.
    pub fn fcmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.push(Inst::binary(Op::FCmp(op), Type::I1, a, b))
    }

    /// `select cond, a, b`
    pub fn select(&mut self, ty: Type, cond: Value, a: Value, b: Value) -> Value {
        self.push(Inst {
            op: Op::Select,
            ty,
            args: vec![cond, a, b],
            phi_blocks: Vec::new(),
            imm: 0,
        })
    }

    // ---- memory ------------------------------------------------------------

    /// `base + index * scale` address computation.
    pub fn gep(&mut self, base: Value, index: Value, scale: i64) -> Value {
        self.push(Inst {
            op: Op::Gep,
            ty: Type::Ptr,
            args: vec![base, index],
            phi_blocks: Vec::new(),
            imm: scale,
        })
    }

    /// Typed load from `ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.push(Inst::unary(Op::Load, ty, ptr))
    }

    /// Store `val` to `ptr`.
    pub fn store(&mut self, val: Value, ptr: Value) -> Value {
        let ty = match val {
            Value::Const(c) => c.ty(),
            _ => Type::I64,
        };
        self.push(Inst {
            op: Op::Store,
            ty,
            args: vec![val, ptr],
            phi_blocks: Vec::new(),
            imm: 0,
        })
    }

    // ---- calls and φ --------------------------------------------------------

    /// Call `callee` with `args`; `ret` is the callee's return type
    /// (`Type::I64` result for void callees is never read).
    pub fn call(&mut self, callee: FuncId, ret: Type, args: &[Value]) -> Value {
        self.push(Inst {
            op: Op::Call(callee),
            ty: ret,
            args: args.to_vec(),
            phi_blocks: Vec::new(),
            imm: 0,
        })
    }

    /// A φ joining `incoming` `(block, value)` pairs.
    ///
    /// φs must be created before non-φ instructions of the same block; the
    /// verifier enforces this.
    pub fn phi(&mut self, ty: Type, incoming: &[(BlockId, Value)]) -> Value {
        self.push(Inst::phi(ty, incoming))
    }

    // ---- terminators --------------------------------------------------------

    /// Terminate the current block with an unconditional jump.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Br(target);
    }

    /// Terminate the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        };
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.func.block_mut(self.cur).term = Terminator::Ret(v);
    }

    /// Finish and extract the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Peek at the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_branchy_function() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let entry = b.entry();
        let t = b.block("t");
        let e = b.block("e");
        let x = b.arg(0);
        b.switch_to(entry);
        let c = b.icmp_sgt(x, Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let v = b.add(x, Value::int(1));
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(Value::int(0)));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_cond_branches(), 1);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    #[should_panic(expected = "argument index out of range")]
    fn arg_bounds_checked() {
        let b = FunctionBuilder::new("f", &[], None);
        b.arg(0);
    }

    #[test]
    fn memory_helpers_have_expected_types() {
        let mut b = FunctionBuilder::new("g", &[Type::Ptr], None);
        let p = b.arg(0);
        let addr = b.gep(p, Value::int(3), 8);
        let v = b.load(Type::F64, addr);
        let s = b.store(v, addr);
        b.ret(None);
        let f = b.finish();
        let addr_id = addr.as_inst().unwrap();
        assert_eq!(f.inst(addr_id).ty, Type::Ptr);
        assert_eq!(f.inst(addr_id).imm, 8);
        assert_eq!(f.inst(v.as_inst().unwrap()).ty, Type::F64);
        assert_eq!(f.inst(s.as_inst().unwrap()).op, Op::Store);
        assert_eq!(f.block_mem_ops(BlockId(0)), 2);
    }
}
