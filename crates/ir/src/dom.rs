//! Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::module::BlockId;

/// Immediate-dominator tree for one function.
///
/// The entry block is its own idom. Unreachable blocks have no idom.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Compute dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> DomTree {
        let rpo = cfg.reverse_post_order();
        let n = cfg.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.index()] != Some(ni) {
                        idom[bb.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_index }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("walking above entry");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("walking above entry");
            }
        }
        a
    }

    /// Immediate dominator of `bb`, or `None` for the entry / unreachable
    /// blocks.
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        if bb == BlockId(0) {
            None
        } else {
            self.idom[bb.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.idom[bb.index()].is_some()
    }

    /// The reverse-post-order index of `bb` (`usize::MAX` when unreachable).
    pub fn rpo_index(&self, bb: BlockId) -> usize {
        self.rpo_index[bb.index()]
    }
}

/// Immediate post-dominator tree, computed over the reversed CFG with a
/// virtual exit node joining all `Ret` blocks.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// `ipdom[b]`: immediate post-dominator of `b`. `None` means the virtual
    /// exit (for blocks whose ipdom is the exit itself) or that `b` cannot
    /// reach any exit.
    ipdom: Vec<Option<BlockId>>,
    can_exit: Vec<bool>,
}

impl PostDomTree {
    /// Compute post-dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> PostDomTree {
        let n = cfg.len();
        // Node ids: 0..n are blocks; n is the virtual exit.
        let exit = n;
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // preds in reversed graph = succs in CFG
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (b, pb) in preds.iter_mut().enumerate().take(n) {
            for s in cfg.succs(BlockId(b as u32)) {
                // reversed edge s -> b
                succs[s.index()].push(b);
                pb.push(s.index());
            }
        }
        for e in cfg.exits() {
            succs[exit].push(e.index());
            preds[e.index()].push(exit);
        }
        // RPO of reversed graph from the virtual exit.
        let mut post = Vec::new();
        let mut state = vec![0u8; n + 1];
        let mut stack = vec![(exit, 0usize)];
        state[exit] = 1;
        while let Some((u, i)) = stack.pop() {
            if i < succs[u].len() {
                stack.push((u, i + 1));
                let v = succs[u][i];
                if state[v] == 0 {
                    state[v] = 1;
                    stack.push((v, 0));
                }
            } else {
                state[u] = 2;
                post.push(u);
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, u) in post.iter().enumerate() {
            rpo_index[*u] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[exit] = Some(exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &u in post.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[u] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let (mut a, mut b) = (p, cur);
                            while a != b {
                                while rpo_index[a] > rpo_index[b] {
                                    a = idom[a].expect("walk above exit");
                                }
                                while rpo_index[b] > rpo_index[a] {
                                    b = idom[b].expect("walk above exit");
                                }
                            }
                            a
                        }
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[u] != Some(ni) {
                        idom[u] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        let can_exit: Vec<bool> = (0..n).map(|b| idom[b].is_some()).collect();
        let ipdom = (0..n)
            .map(|b| match idom[b] {
                Some(d) if d != exit => Some(BlockId(d as u32)),
                _ => None,
            })
            .collect();
        PostDomTree { ipdom, can_exit }
    }

    /// The immediate post-dominator of `bb`, or `None` when it is the
    /// virtual exit (i.e. `bb` is a `Ret` block or post-dominated only by
    /// the exit) or `bb` cannot reach an exit.
    pub fn ipdom(&self, bb: BlockId) -> Option<BlockId> {
        self.ipdom[bb.index()]
    }

    /// Whether `bb` can reach a function exit.
    pub fn can_exit(&self, bb: BlockId) -> bool {
        self.can_exit[bb.index()]
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{Type, Value};

    #[test]
    fn diamond_dominators() {
        // entry -> (a|b) -> merge
        let mut b = FunctionBuilder::new("f", &[Type::I64], None);
        let entry = b.entry();
        let a = b.block("a");
        let c = b.block("b");
        let m = b.block("m");
        b.switch_to(entry);
        let cond = b.icmp_sgt(b.arg(0), Value::int(0));
        b.cond_br(cond, a, c);
        b.switch_to(a);
        b.br(m);
        b.switch_to(c);
        b.br(m);
        b.switch_to(m);
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::new(&Cfg::new(&f));
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(c), Some(entry));
        assert_eq!(dom.idom(m), Some(entry));
        assert!(dom.dominates(entry, m));
        assert!(!dom.dominates(a, m));
        assert!(dom.dominates(m, m));
        assert_eq!(dom.idom(entry), None);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], None);
        let entry = b.entry();
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(head);
        b.switch_to(head);
        let cond = b.icmp_slt(b.arg(0), Value::int(10));
        b.cond_br(cond, body, exit);
        b.switch_to(body);
        b.br(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::new(&Cfg::new(&f));
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, exit));
    }

    #[test]
    fn diamond_postdominators() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], None);
        let entry = b.entry();
        let a = b.block("a");
        let c = b.block("b");
        let m = b.block("m");
        b.switch_to(entry);
        let cond = b.icmp_sgt(b.arg(0), Value::int(0));
        b.cond_br(cond, a, c);
        b.switch_to(a);
        b.br(m);
        b.switch_to(c);
        b.br(m);
        b.switch_to(m);
        b.ret(None);
        let f = b.finish();
        let pdom = PostDomTree::new(&Cfg::new(&f));
        assert_eq!(pdom.ipdom(entry), Some(m));
        assert_eq!(pdom.ipdom(a), Some(m));
        assert_eq!(pdom.ipdom(c), Some(m));
        assert_eq!(pdom.ipdom(m), None); // virtual exit
        assert!(pdom.post_dominates(m, entry));
        assert!(!pdom.post_dominates(a, entry));
        assert!(pdom.can_exit(entry));
    }

    #[test]
    fn infinite_loop_cannot_exit() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let entry = b.entry();
        let spin = b.block("spin");
        b.switch_to(entry);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let f = b.finish();
        let pdom = PostDomTree::new(&Cfg::new(&f));
        assert!(!pdom.can_exit(spin));
        assert!(!pdom.can_exit(entry));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        let mut f = b.finish();
        let orphan = f.add_block("orphan");
        f.block_mut(orphan).term = crate::Terminator::Ret(None);
        let dom = DomTree::new(&Cfg::new(&f));
        assert!(!dom.is_reachable(orphan));
        assert_eq!(dom.idom(orphan), None);
        assert!(!dom.dominates(BlockId(0), orphan));
    }
}
