//! `needle-ir` — a compact SSA-style compiler intermediate representation.
//!
//! This crate is the substrate that replaces LLVM in the Needle (HPCA 2017)
//! reproduction. Needle's analyses — Ball-Larus path profiling, region
//! formation (Superblocks, Hyperblocks, BL-paths, Braids) and software-frame
//! extraction — are all control-flow-graph / SSA level algorithms, so they
//! run unchanged on this IR.
//!
//! The crate provides:
//!
//! * the IR itself: [`Module`], [`Function`], [`Block`], [`Inst`], [`Value`];
//! * a [`builder::FunctionBuilder`] for ergonomically constructing functions;
//! * CFG analyses: predecessors/successors ([`cfg`]), dominators ([`dom`]),
//!   natural loops and back edges ([`loops`]);
//! * a deterministic [`interp`]reter that executes modules against a
//!   byte-addressable [`interp::Memory`] and streams events to a
//!   [`interp::TraceSink`] (the hook used by the profilers);
//! * an [`inline`] pass (the paper aggressively inlines hot call chains
//!   before path profiling);
//! * an IR [`verify`]er and a textual [printer](crate::print).
//!
//! # Example
//!
//! ```
//! use needle_ir::builder::FunctionBuilder;
//! use needle_ir::{Module, Type, Value};
//! use needle_ir::interp::{Interp, Memory, NullSink};
//!
//! // fn double_or_zero(x) = if x > 0 { x * 2 } else { 0 }
//! let mut b = FunctionBuilder::new("double_or_zero", &[Type::I64], Some(Type::I64));
//! let entry = b.entry();
//! let then_bb = b.block("then");
//! let else_bb = b.block("else");
//! let exit = b.block("exit");
//! let x = b.arg(0);
//! b.switch_to(entry);
//! let c = b.icmp_sgt(x, Value::int(0));
//! b.cond_br(c, then_bb, else_bb);
//! b.switch_to(then_bb);
//! let dbl = b.mul(x, Value::int(2));
//! b.br(exit);
//! b.switch_to(else_bb);
//! b.br(exit);
//! b.switch_to(exit);
//! let r = b.phi(Type::I64, &[(then_bb, dbl), (else_bb, Value::int(0))]);
//! b.ret(Some(r));
//! let func = b.finish();
//!
//! let mut module = Module::new("demo");
//! let f = module.push(func);
//! let mut mem = Memory::new();
//! let out = Interp::new(&module)
//!     .run(f, &[needle_ir::Constant::Int(21)], &mut mem, &mut NullSink)
//!     .unwrap();
//! assert_eq!(out.unwrap().as_int(), 42);
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod inline;
pub mod interp;
pub mod loops;
pub mod mem;
pub mod parse;
pub mod print;
pub mod verify;

mod engine;
mod inst;
mod module;

pub use inst::{CmpOp, Inst, Op, Terminator};
pub use module::{Block, BlockId, Constant, FuncId, Function, InstId, Module, Type, Value};
