//! Structural and SSA verification of functions.

use std::fmt;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{Op, Terminator};
use crate::module::{BlockId, FuncId, Function, InstId, Module, Value};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a block id that does not exist.
    BadTarget(BlockId, BlockId),
    /// A reachable block still has the placeholder terminator.
    UnterminatedBlock(BlockId),
    /// A φ appears after a non-φ instruction in its block.
    PhiNotLeading(BlockId, InstId),
    /// A φ's incoming blocks don't match the block's CFG predecessors.
    PhiPredMismatch(BlockId, InstId),
    /// An instruction uses a value whose definition does not dominate it.
    UseNotDominated(BlockId, InstId),
    /// An operand refers to an instruction id out of range.
    BadOperand(InstId),
    /// An argument index is out of range for the function signature.
    BadArgIndex(InstId, u32),
    /// A call targets a function id not present in the module.
    BadCallee(InstId, FuncId),
    /// An instruction id appears in more than one block.
    InstInMultipleBlocks(InstId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadTarget(bb, t) => write!(f, "{bb} branches to nonexistent {t}"),
            VerifyError::UnterminatedBlock(bb) => write!(f, "{bb} is reachable but unterminated"),
            VerifyError::PhiNotLeading(bb, i) => write!(f, "phi {i} in {bb} is not leading"),
            VerifyError::PhiPredMismatch(bb, i) => {
                write!(f, "phi {i} in {bb} disagrees with predecessors")
            }
            VerifyError::UseNotDominated(bb, i) => {
                write!(f, "use in {i} ({bb}) not dominated by definition")
            }
            VerifyError::BadOperand(i) => write!(f, "operand of {i} out of range"),
            VerifyError::BadArgIndex(i, n) => write!(f, "{i} uses argument {n} out of range"),
            VerifyError::BadCallee(i, c) => write!(f, "{i} calls nonexistent function {c:?}"),
            VerifyError::InstInMultipleBlocks(i) => write!(f, "{i} appears in multiple blocks"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify one function. `module` is used to validate call targets; pass the
/// enclosing module, or `None` to skip call checking.
///
/// # Errors
/// Returns the first [`VerifyError`] discovered.
pub fn verify_function(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let n = func.num_blocks() as u32;
    // Instruction-block ownership: each inst in exactly one block.
    let mut owner: Vec<Option<BlockId>> = vec![None; func.insts.len()];
    for bb in func.block_ids() {
        for &iid in &func.block(bb).insts {
            if iid.index() >= func.insts.len() {
                return Err(VerifyError::BadOperand(iid));
            }
            if owner[iid.index()].is_some() {
                return Err(VerifyError::InstInMultipleBlocks(iid));
            }
            owner[iid.index()] = Some(bb);
        }
    }

    // Branch-target range check must precede CFG construction (the CFG
    // indexes adjacency lists by target id).
    for bb in func.block_ids() {
        for t in func.block(bb).term.successors() {
            if t.0 >= n {
                return Err(VerifyError::BadTarget(bb, t));
            }
        }
    }

    let cfg = Cfg::new(func);
    let dom = DomTree::new(&cfg);
    let reachable = cfg.reachable();

    for bb in func.block_ids() {
        let block = func.block(bb);
        if reachable[bb.index()] && matches!(block.term, Terminator::Unreachable) {
            return Err(VerifyError::UnterminatedBlock(bb));
        }

        let mut seen_non_phi = false;
        for &iid in &block.insts {
            let inst = func.inst(iid);
            if inst.is_phi() {
                if seen_non_phi {
                    return Err(VerifyError::PhiNotLeading(bb, iid));
                }
                // φ incoming blocks must exactly cover the predecessors.
                let mut preds: Vec<BlockId> = cfg.preds(bb).to_vec();
                preds.sort();
                preds.dedup();
                let mut inc: Vec<BlockId> = inst.phi_blocks.clone();
                inc.sort();
                inc.dedup();
                if reachable[bb.index()] && preds != inc {
                    return Err(VerifyError::PhiPredMismatch(bb, iid));
                }
            } else {
                seen_non_phi = true;
            }

            for (ai, arg) in inst.args.iter().enumerate() {
                match *arg {
                    Value::Inst(def) => {
                        if def.index() >= func.insts.len() {
                            return Err(VerifyError::BadOperand(iid));
                        }
                        let Some(def_bb) = owner[def.index()] else {
                            return Err(VerifyError::BadOperand(iid));
                        };
                        if !reachable[bb.index()] {
                            continue;
                        }
                        // Dominance: for φ uses, the def must dominate the
                        // incoming edge's source; otherwise the def block must
                        // dominate the use block (same-block uses must come
                        // after the def).
                        if inst.is_phi() {
                            let from = inst.phi_blocks[ai];
                            if reachable[from.index()] && !dom.dominates(def_bb, from) {
                                return Err(VerifyError::UseNotDominated(bb, iid));
                            }
                        } else if def_bb == bb {
                            let pos_def = block.insts.iter().position(|x| *x == def);
                            let pos_use = block.insts.iter().position(|x| *x == iid);
                            if pos_def >= pos_use {
                                return Err(VerifyError::UseNotDominated(bb, iid));
                            }
                        } else if !dom.dominates(def_bb, bb) {
                            return Err(VerifyError::UseNotDominated(bb, iid));
                        }
                    }
                    Value::Arg(a) => {
                        if a as usize >= func.params.len() {
                            return Err(VerifyError::BadArgIndex(iid, a));
                        }
                    }
                    Value::Const(_) => {}
                }
            }
            if let Op::Call(callee) = inst.op {
                if let Some(m) = module {
                    if callee.index() >= m.funcs.len() {
                        return Err(VerifyError::BadCallee(iid, callee));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verify every function in `module`.
///
/// # Errors
/// Returns the first failure with its function id.
pub fn verify_module(module: &Module) -> Result<(), (FuncId, VerifyError)> {
    for (id, f) in module.iter() {
        verify_function(f, Some(module)).map_err(|e| (id, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;
    use crate::{Type, Value};

    fn valid_diamond() -> Function {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let entry = b.entry();
        let t = b.block("t");
        let e = b.block("e");
        let m = b.block("m");
        b.switch_to(entry);
        let c = b.icmp_sgt(b.arg(0), Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let v = b.add(b.arg(0), Value::int(1));
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64, &[(t, v), (e, Value::int(0))]);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn valid_function_verifies() {
        assert_eq!(verify_function(&valid_diamond(), None), Ok(()));
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut f = valid_diamond();
        f.block_mut(BlockId(1)).term = Terminator::Br(BlockId(99));
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::BadTarget(BlockId(1), BlockId(99)))
        );
    }

    #[test]
    fn detects_unterminated_reachable_block() {
        let mut f = valid_diamond();
        f.block_mut(BlockId(3)).term = Terminator::Unreachable;
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::UnterminatedBlock(BlockId(3)))
        );
    }

    #[test]
    fn detects_phi_pred_mismatch() {
        let mut f = valid_diamond();
        // φ in merge block claims an incoming edge from entry, which is wrong.
        let phi_id = f.block(BlockId(3)).insts[0];
        f.inst_mut(phi_id).phi_blocks[0] = BlockId(0);
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::PhiPredMismatch(BlockId(3), phi_id))
        );
    }

    #[test]
    fn detects_use_before_def_in_same_block() {
        let mut f = Function::new("f", &[], None);
        let entry = f.entry();
        // inst0 uses inst1 which comes later in the same block.
        let i0 = InstId(0);
        f.insts.push(Inst::binary(
            Op::Add,
            Type::I64,
            Value::Inst(InstId(1)),
            Value::int(1),
        ));
        f.insts
            .push(Inst::binary(Op::Add, Type::I64, Value::int(1), Value::int(2)));
        f.block_mut(entry).insts = vec![i0, InstId(1)];
        f.block_mut(entry).term = Terminator::Ret(None);
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::UseNotDominated(entry, i0))
        );
    }

    #[test]
    fn detects_use_not_dominated_across_blocks() {
        // value defined in the "then" arm used in the merge block directly
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let entry = b.entry();
        let t = b.block("t");
        let e = b.block("e");
        let m = b.block("m");
        b.switch_to(entry);
        let c = b.icmp_sgt(b.arg(0), Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let v = b.add(b.arg(0), Value::int(1));
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        b.ret(Some(v)); // not dominated!
        let f = b.finish();
        // Ret operands are not instruction uses in this IR (terminators hold
        // values but we verify instruction operands); craft an inst use:
        let mut f2 = f.clone();
        let bad = Inst::binary(Op::Add, Type::I64, v, Value::int(1));
        f2.push_inst(m, bad);
        let last = InstId((f2.insts.len() - 1) as u32);
        assert_eq!(
            verify_function(&f2, None),
            Err(VerifyError::UseNotDominated(m, last))
        );
    }

    #[test]
    fn detects_bad_arg_index_and_callee() {
        let mut f = Function::new("f", &[], None);
        let entry = f.entry();
        f.push_inst(
            entry,
            Inst::binary(Op::Add, Type::I64, Value::Arg(3), Value::int(0)),
        );
        f.block_mut(entry).term = Terminator::Ret(None);
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::BadArgIndex(InstId(0), 3))
        );

        let mut g = Function::new("g", &[], None);
        let entry = g.entry();
        g.push_inst(
            entry,
            Inst {
                op: Op::Call(FuncId(9)),
                ty: Type::I64,
                args: vec![],
                phi_blocks: vec![],
                imm: 0,
            },
        );
        g.block_mut(entry).term = Terminator::Ret(None);
        let mut m = Module::new("m");
        m.push(g);
        assert!(matches!(
            verify_module(&m),
            Err((_, VerifyError::BadCallee(_, FuncId(9))))
        ));
    }

    #[test]
    fn detects_inst_in_multiple_blocks() {
        let mut f = valid_diamond();
        let stolen = f.block(BlockId(1)).insts[0];
        f.block_mut(BlockId(2)).insts.push(stolen);
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::InstInMultipleBlocks(stolen))
        );
    }
}
