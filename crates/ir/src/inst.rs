//! Instructions, opcodes and terminators.

use std::fmt;

use crate::module::{BlockId, FuncId, Type, Value};

/// Comparison predicate shared by integer and float compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed / ordered less-than.
    Lt,
    /// Signed / ordered less-or-equal.
    Le,
    /// Signed / ordered greater-than.
    Gt,
    /// Signed / ordered greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the predicate over a three-way ordering result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Non-terminator opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (signed; division by zero yields 0, like a trap value).
    Div,
    /// Integer remainder (signed; rem by zero yields 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Square root (unary; maps to the FPU).
    FSqrt,
    /// Integer compare producing `I1`.
    ICmp(CmpOp),
    /// Float compare producing `I1`.
    FCmp(CmpOp),
    /// `select cond, a, b` — the IR-level conditional move.
    Select,
    /// Convert integer to float.
    IToF,
    /// Convert float to integer (truncating).
    FToI,
    /// Address computation: `base + index * scale` (scale is the constant
    /// second operand of the instruction's `imm` field).
    Gep,
    /// Load from the pointer operand.
    Load,
    /// Store the value operand (args[0]) to the pointer operand (args[1]).
    Store,
    /// Call a function in the same module.
    Call(FuncId),
    /// SSA φ. `args[i]` flows in from `phi_blocks[i]`.
    Phi,
}

impl Op {
    /// Whether this op executes on a floating-point unit.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Op::FAdd | Op::FSub | Op::FMul | Op::FDiv | Op::FSqrt | Op::FCmp(_) | Op::IToF
        )
    }

    /// Whether this op accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// Minimum argument count [`eval_pure`](crate::interp::eval_pure)
    /// reads. Callers must check this before evaluating: `eval_pure`
    /// indexes its slice directly. Ops `eval_pure` rejects outright
    /// (memory, calls, φ) report 0.
    pub fn arity(self) -> usize {
        match self {
            Op::Select => 3,
            Op::FSqrt | Op::IToF | Op::FToI => 1,
            Op::Load | Op::Store | Op::Call(_) | Op::Phi => 0,
            _ => 2,
        }
    }

    /// Mnemonic for printing.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::FAdd => "fadd",
            Op::FSub => "fsub",
            Op::FMul => "fmul",
            Op::FDiv => "fdiv",
            Op::FSqrt => "fsqrt",
            Op::ICmp(_) => "icmp",
            Op::FCmp(_) => "fcmp",
            Op::Select => "select",
            Op::IToF => "itof",
            Op::FToI => "ftoi",
            Op::Gep => "gep",
            Op::Load => "load",
            Op::Store => "store",
            Op::Call(_) => "call",
            Op::Phi => "phi",
        }
    }
}

/// An instruction. φ instructions additionally carry the incoming block per
/// operand in `phi_blocks` (parallel to `args`).
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Result type (for `Store`, the type of the stored value).
    pub ty: Type,
    /// Operands.
    pub args: Vec<Value>,
    /// For φ instructions: the incoming block of each operand in `args`.
    /// Empty for all other opcodes.
    pub phi_blocks: Vec<BlockId>,
    /// Immediate operand used by [`Op::Gep`] as the index scale (bytes).
    pub imm: i64,
}

impl Inst {
    /// A unary instruction.
    pub fn unary(op: Op, ty: Type, a: Value) -> Inst {
        Inst {
            op,
            ty,
            args: vec![a],
            phi_blocks: Vec::new(),
            imm: 0,
        }
    }

    /// A binary instruction.
    pub fn binary(op: Op, ty: Type, a: Value, b: Value) -> Inst {
        Inst {
            op,
            ty,
            args: vec![a, b],
            phi_blocks: Vec::new(),
            imm: 0,
        }
    }

    /// A φ instruction joining `incoming` `(block, value)` pairs.
    pub fn phi(ty: Type, incoming: &[(BlockId, Value)]) -> Inst {
        Inst {
            op: Op::Phi,
            ty,
            args: incoming.iter().map(|(_, v)| *v).collect(),
            phi_blocks: incoming.iter().map(|(b, _)| *b).collect(),
            imm: 0,
        }
    }

    /// Whether this is a φ instruction.
    pub fn is_phi(&self) -> bool {
        matches!(self.op, Op::Phi)
    }

    /// The φ operand flowing in from block `pred`, if any.
    pub fn phi_incoming(&self, pred: BlockId) -> Option<Value> {
        self.phi_blocks
            .iter()
            .position(|b| *b == pred)
            .map(|i| self.args[i])
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Br(BlockId),
    /// Two-way conditional branch on an `I1` value.
    CondBr {
        /// Branch condition.
        cond: Value,
        /// Successor on true.
        then_bb: BlockId,
        /// Successor on false.
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret(Option<Value>),
    /// Placeholder for blocks under construction; invalid at run time.
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator, in branch order
    /// (`[then, else]` for conditional branches).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(t) => vec![*t],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => Vec::new(),
        }
    }

    /// Whether this terminator is a conditional branch.
    pub fn is_cond(&self) -> bool {
        matches!(self, Terminator::CondBr { .. })
    }

    /// Rewrite every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Br(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Ret(_) | Terminator::Unreachable => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_eval_covers_all_predicates() {
        assert!(CmpOp::Eq.eval(Ordering::Equal));
        assert!(!CmpOp::Eq.eval(Ordering::Less));
        assert!(CmpOp::Ne.eval(Ordering::Greater));
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(!CmpOp::Le.eval(Ordering::Greater));
        assert!(CmpOp::Gt.eval(Ordering::Greater));
        assert!(CmpOp::Ge.eval(Ordering::Equal));
        assert!(!CmpOp::Ge.eval(Ordering::Less));
    }

    #[test]
    fn op_classification() {
        assert!(Op::FAdd.is_float());
        assert!(Op::FCmp(CmpOp::Lt).is_float());
        assert!(!Op::Add.is_float());
        assert!(Op::Load.is_mem());
        assert!(Op::Store.is_mem());
        assert!(!Op::Mul.is_mem());
    }

    #[test]
    fn phi_incoming_lookup() {
        let phi = Inst::phi(
            Type::I64,
            &[(BlockId(1), Value::int(10)), (BlockId(2), Value::int(20))],
        );
        assert!(phi.is_phi());
        assert_eq!(phi.phi_incoming(BlockId(1)), Some(Value::int(10)));
        assert_eq!(phi.phi_incoming(BlockId(2)), Some(Value::int(20)));
        assert_eq!(phi.phi_incoming(BlockId(3)), None);
    }

    #[test]
    fn terminator_successors_and_retarget() {
        let mut t = Terminator::CondBr {
            cond: Value::int(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(t.is_cond());
        t.retarget(BlockId(2), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(5)]);

        let mut b = Terminator::Br(BlockId(3));
        b.retarget(BlockId(3), BlockId(4));
        assert_eq!(b.successors(), vec![BlockId(4)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }
}
