//! The pre-decoded execution engine.
//!
//! The reference interpreter ([`crate::interp::Interp::run_reference`]) is a
//! tree walker: every executed instruction re-resolves `Value` operands,
//! every block entry re-scans `phi_incoming` lists, every event goes through
//! a `dyn TraceSink` virtual call, and every step pays a budget check. This
//! module removes all of that with the classic decode/dispatch split used by
//! production bytecode VMs:
//!
//! * **One-time lowering.** [`Engine::decode`] flattens each function's SSA
//!   CFG into a dense stream of fixed-width instruction words ([`DInst`],
//!   24 bytes). Opcodes are *specialized* ([`DOp`]): `add` is its own arm
//!   with the arithmetic inlined, not a trip through the generic
//!   [`eval_pure`] table. Operands are plain indices ([`POp`]) into one
//!   unified slot array laid out `[registers | arguments | constants]`:
//!   argument and constant slots are stamped defined once per call, so an
//!   operand read is a single indexed load plus a generation compare with
//!   no tag dispatch. An instruction's register slot is its [`InstId`]
//!   index, so no renaming pass is needed. Pure ops whose operand count
//!   does not match the opcode's arity fall back to a buffered
//!   [`eval_pure`] path ([`DOp::Pure`]) that reads operands in exactly the
//!   walker's order. Adjacent `gep` + `load`/`store` pairs — the address
//!   arithmetic of every array access — fuse into superinstructions
//!   ([`DOp::GepLoadI`]/[`DOp::GepLoadF`]/[`DOp::GepStore`]) that still
//!   write the gep's register and account both steps, but skip a dispatch
//!   round and a register round-trip.
//! * **φ as parallel moves.** For every CFG edge, the successor's leading φs
//!   are pre-resolved against the predecessor into a [`Move`] list attached
//!   to the edge ([`DEdge`]); block entry replays the list (all reads before
//!   any write, exactly matching the walker's simultaneous-φ semantics).
//!   An edge whose φs lack an incoming entry carries the failing φ's id in
//!   [`DEdge::phi_err`], positioned *after* the moves that precede it so the
//!   error fires at the same point in the event stream as the walker's.
//! * **Batched step accounting.** Each block carries its dynamic step cost
//!   (non-φ instructions + terminator). When the block contains no call and
//!   the budget covers the whole block, the budget is debited once up front
//!   and the body runs without per-instruction checks. Blocks containing
//!   calls — where the callee consumes from the same budget — and blocks
//!   the remaining budget cannot cover take the per-instruction slow path,
//!   which preserves the walker's exact `StepLimit` cut point (same events
//!   emitted before the error). Budget *underflow on error paths* is
//!   unobservable: `Interp::steps` is only published on successful runs.
//! * **Monomorphic dispatch.** The execution loop is generic over
//!   `S: TraceSink + ?Sized`, so running with a concrete sink (e.g.
//!   `NullSink` or a profiler) compiles to direct calls that inline away.
//! * **Frame recycling.** Register frames are generation-stamped
//!   ([`FrameBuf`]) and recycled through a [`FramePool`]: acquiring a frame
//!   bumps the generation instead of zeroing (or re-allocating) the slots,
//!   so a call costs O(1) setup instead of O(registers).
//!
//! Error attribution matches the reference walker: operand reads inside a
//! body instruction or a φ move report [`ExecError::UndefinedValue`] /
//! [`ExecError::PhiMissingIncoming`] at the *consuming* instruction's id,
//! while terminator operands (which have no id of their own) report the
//! *defining* instruction's id — conveniently, a register operand's index
//! *is* the defining instruction's id.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;

use crate::inst::{CmpOp, Op, Terminator};
use crate::interp::{eval_pure, ExecError, Fuel, TraceSink, Val};
use crate::mem::Memory;
use crate::module::{BlockId, FuncId, Function, InstId, Module, Type, Value};

/// Largest pure-op arity read into the on-stack operand buffer of the
/// [`DOp::Pure`] fallback (`Op::Select` has 3; headroom for future ops).
/// Pure instructions with more operands than this still execute — the extra
/// operands are read (so undefined-value errors fire exactly as in the
/// walker) but cannot carry into `eval_pure`, which inspects at most the
/// first three.
const PURE_BUF: usize = 8;

/// A resolved operand: a plain index into the function's unified slot
/// array, laid out `[registers | arguments | constants]`. Register slot `i`
/// belongs to the instruction with [`InstId`] `i`; argument and constant
/// slots are stamped defined once per call, so an operand read is a single
/// indexed load plus a generation compare — no tag dispatch.
type POp = u32;

/// Specialized opcodes. Compare ops are split per predicate so dispatch
/// lands directly on the comparison; loads are split by result type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    IEq,
    INe,
    ILt,
    ILe,
    IGt,
    IGe,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
    /// Reg-immediate variants: the second operand is a constant,
    /// pre-converted at decode time (`as_int` for the integer family,
    /// `as_float` bits for the float family) and fetched from
    /// [`DFunc::imms`] via `ext` — no slot read, no stamp check.
    AddI,
    SubI,
    MulI,
    DivI,
    RemI,
    AndI,
    OrI,
    XorI,
    ShlI,
    ShrI,
    FAddI,
    FSubI,
    FMulI,
    FDivI,
    IEqI,
    INeI,
    ILtI,
    ILeI,
    IGtI,
    IGeI,
    /// `select cond, a, b` — `ext` holds the packed third operand.
    Select,
    IToF,
    FToI,
    /// `base + index * scale` — `ext` indexes [`DFunc::imms`].
    Gep,
    /// Load with an integer-typed result.
    LoadI,
    /// Load with a float-typed result.
    LoadF,
    /// Store `a` to address `b`.
    Store,
    /// Fused `gep` + integer `load`: `a`/`b` are the gep operands, `dst`
    /// the load's register, `ext` indexes [`DFunc::fused`]. Counts as two
    /// steps and still writes the gep's register.
    GepLoadI,
    /// Fused `gep` + float `load`.
    GepLoadF,
    /// Fused `gep` + `store`: `a`/`b` are the gep operands, `dst` the
    /// packed *value* operand, `ext` indexes [`DFunc::fused`].
    GepStore,
    /// Fused `fmul` + `fadd`, multiply result first: `dst = (a*b) + c`
    /// where `a`/`b` are the fmul operands and `c` rides in the side
    /// table's `imm` field (as a packed operand). `ext` indexes
    /// [`DFunc::fused`].
    FMulAddA,
    /// Fused `fmul` + `fadd`, multiply result second: `dst = c + (a*b)`.
    FMulAddB,
    /// Fused `add`-imm + `and`-imm — the `(i + salt) & mask` address
    /// pattern of the workload generator's loads and stores. `a` is the
    /// add's operand, `b` the add's register (still written), `dst` the
    /// and's register; the two immediates sit adjacently at `ext` and
    /// `ext + 1` in [`DFunc::imms`]. Counts as two steps.
    AddAndI,
    /// Fused `gep` + integer `load` + accumulate `add` — the
    /// load-then-fold shape of every generated integer load. `a`/`b` are
    /// the gep operands, `dst` the add's register; [`DFunc::fused`] holds
    /// two adjacent entries at `ext` (gep immediate, gep register, load
    /// id) and `ext + 1` (accumulator operand in `imm`, load register in
    /// `gep_dst`). Counts as three steps; every intermediate register is
    /// still written.
    GepLoadAdd,
    /// Fused `gep` + integer `load` + `itof` — the fp workloads' fold
    /// prologue. Needs no second side-table entry: the load's register is
    /// its own id, already in the entry's `mem_iid`. Counts as three
    /// steps.
    GepLoadItoF,
    /// Call — `ext` indexes [`DFunc::calls`].
    Call,
    /// Generic pure fallback (arity mismatch) — `ext` indexes
    /// [`DFunc::pures`].
    Pure,
}

/// One decoded instruction: a fixed-width word.
#[derive(Debug, Clone, Copy)]
struct DInst {
    /// Specialized opcode.
    op: DOp,
    /// Destination register slot.
    dst: u32,
    /// First operand.
    a: POp,
    /// Second operand (unary ops ignore it).
    b: POp,
    /// Opcode-specific extra: Select's third operand, Gep's immediate
    /// index, Call/Pure side-table index.
    ext: u32,
    /// Original id, for trace events and error attribution.
    iid: InstId,
}

/// Call side-table entry.
#[derive(Debug, Clone, Copy)]
struct DCall {
    /// Callee.
    callee: FuncId,
    /// Start of the argument run in [`DFunc::xargs`].
    args: u32,
    /// Argument count.
    nargs: u32,
}

/// Generic-pure side-table entry (operand count does not match the opcode's
/// natural arity; replays the walker's buffered read + [`eval_pure`]).
#[derive(Debug, Clone, Copy)]
struct DPure {
    /// Opcode.
    op: Op,
    /// Immediate (Gep scale).
    imm: i64,
    /// Start of the operand run in [`DFunc::xargs`].
    args: u32,
    /// Operand count.
    nargs: u32,
}

/// Side-table entry for a fused instruction pair (`gep`+`load`/`store`,
/// `fmul`+`fadd`).
#[derive(Debug, Clone, Copy)]
struct DFused {
    /// Gep scale immediate; for `fmul`+`fadd`, the fadd's other packed
    /// operand.
    imm: i64,
    /// The first instruction's own register slot (still written: later
    /// instructions may read the intermediate result).
    gep_dst: u32,
    /// The second instruction's id — used for the mem trace event and for
    /// second-half operand error attribution. The fused [`DInst::iid`] is
    /// the *first* instruction's id, attributing its operand reads
    /// correctly.
    mem_iid: InstId,
}

/// One φ-move: on traversing the owning edge, read `src` and (after all
/// sibling reads) write it to register `dst`.
#[derive(Debug, Clone, Copy)]
struct Move {
    /// Destination register slot (the φ's own slot).
    dst: u32,
    /// Incoming value for this edge.
    src: POp,
    /// The φ's id, for error attribution on an undefined read.
    iid: InstId,
}

/// A decoded CFG edge: target block plus its pre-resolved φ-move run.
#[derive(Debug, Clone)]
struct DEdge {
    /// Target block index.
    to: u32,
    /// φ-move run `[mv_start, mv_end)` in [`DFunc::moves`].
    mv_start: u32,
    /// End of the φ-move run.
    mv_end: u32,
    /// When a leading φ of the target has no incoming entry for this edge:
    /// that φ's id. The error fires after the preceding moves' reads,
    /// matching the walker's φ scan order.
    phi_err: Option<InstId>,
}

/// Decoded terminator.
#[derive(Debug, Clone)]
enum DTerm {
    /// Unconditional jump.
    Jump(DEdge),
    /// Two-way branch.
    CondBr {
        /// Branch condition.
        cond: POp,
        /// Edge taken when the condition is true.
        t: DEdge,
        /// Edge taken when the condition is false.
        f: DEdge,
    },
    /// Fused compare + two-way branch: the block's last instruction was a
    /// specialized compare whose result feeds the branch. The compare's
    /// register is still written (φ moves or later blocks may read it) and
    /// its step is still accounted — the fusion only skips a dispatch
    /// round and a register round-trip.
    CmpBr {
        /// The compare opcode (one of the `IEq..FGe` family).
        op: DOp,
        /// Compare operands.
        a: POp,
        /// Second compare operand.
        b: POp,
        /// The compare's register slot.
        dst: u32,
        /// The compare's id, for operand error attribution.
        iid: InstId,
        /// Edge taken when the comparison holds.
        t: DEdge,
        /// Edge taken otherwise.
        f: DEdge,
    },
    /// Return (with optional value).
    Ret(Option<POp>),
    /// Executing this block is an error.
    Unreachable,
}

/// A decoded basic block: a run of [`DInst`]s plus step-accounting metadata.
#[derive(Debug, Clone)]
struct DBlock {
    /// Body run `[first, last)` in [`DFunc::insts`] (φs excluded).
    first: u32,
    /// End of the body run.
    last: u32,
    /// Dynamic step cost of the whole block: non-φ instructions + 1 for the
    /// terminator. Used for batched budget accounting.
    cost: u64,
    /// Whether the body contains a call (forces per-instruction accounting,
    /// since callees consume from the same budget).
    has_call: bool,
    /// Terminator.
    term: DTerm,
}

/// A decoded function.
#[derive(Debug, Clone, Default)]
struct DFunc {
    /// Register slot count (one per arena instruction; slot = [`InstId`]).
    nregs: usize,
    /// Argument slot count (highest `Value::Arg` index used + 1). Argument
    /// slot `n` lives at unified index `nregs + n`.
    nargs: usize,
    /// Total unified slot count: `nregs + nargs + consts.len()`.
    nslots: usize,
    /// Blocks, indexed by [`BlockId`] (block ids are dense indices).
    blocks: Vec<DBlock>,
    /// Flat instruction pool; blocks reference runs of it.
    insts: Vec<DInst>,
    /// Flat φ-move pool; edges reference runs of it.
    moves: Vec<Move>,
    /// Constant pool, copied into slots `[nregs + nargs ..)` once per call.
    consts: Vec<Val>,
    /// Gep immediates.
    imms: Vec<i64>,
    /// Fused gep+load/store side table.
    fused: Vec<DFused>,
    /// Call side table.
    calls: Vec<DCall>,
    /// Generic-pure side table.
    pures: Vec<DPure>,
    /// Operand runs for calls and generic pures.
    xargs: Vec<POp>,
    /// When the *entry* block has leading φs they can never resolve (there
    /// is no predecessor): the first such φ's id.
    entry_phi_err: Option<InstId>,
    /// Set by [`DFunc::pack`] when a slot index overflowed the packed
    /// operand width; checked once at the end of decode so pack itself
    /// stays infallible (and panic-free) at every call site.
    overflow: bool,
}

thread_local! {
    /// Deliberate decode-time fault injection for the fuzzing subsystem:
    /// when set, the GepLoadAdd peephole records the load's own register as
    /// the accumulator operand, so the engine computes `v + v` where the
    /// walker computes `acc + v`. Thread-local so parallel tests decoding
    /// modules on other threads are unaffected.
    static BREAK_GEP_LOAD_ADD: Cell<bool> = const { Cell::new(false) };
}

/// Toggle the injected GepLoadAdd fusion bug for engines decoded on this
/// thread from now on. Exposed (via `interp`) so the fuzzer's
/// catch-and-shrink loop can be validated end-to-end against a real
/// decode-time divergence.
pub(crate) fn set_break_gep_load_add(on: bool) {
    BREAK_GEP_LOAD_ADD.with(|b| b.set(on));
}

/// A whole module, decoded. Immutable after construction; one decode serves
/// any number of runs.
#[derive(Debug, Clone)]
pub(crate) struct Engine {
    funcs: Vec<DFunc>,
}

impl Engine {
    /// Lower every function of `module` into its flat form.
    ///
    /// # Errors
    /// Returns [`ExecError::ModuleTooLarge`] when a function's packed
    /// operand space overflows (previously a decode-time panic).
    pub(crate) fn decode(module: &Module) -> Result<Engine, ExecError> {
        let mut funcs = Vec::with_capacity(module.funcs.len());
        for (ix, f) in module.funcs.iter().enumerate() {
            funcs.push(decode_func(f, FuncId(ix as u32))?);
        }
        Ok(Engine { funcs })
    }
}

impl DFunc {
    /// Fetch a gep/immediate-operand constant. SAFETY contract: `ix` was
    /// emitted by decode as an index into this function's `imms`.
    #[inline(always)]
    fn imm(&self, ix: u32) -> i64 {
        debug_assert!((ix as usize) < self.imms.len());
        unsafe { *self.imms.get_unchecked(ix as usize) }
    }

    /// Fetch a fused-pair side-table entry. Same SAFETY contract as
    /// [`DFunc::imm`].
    #[inline(always)]
    fn fu(&self, ix: u32) -> DFused {
        debug_assert!((ix as usize) < self.fused.len());
        unsafe { *self.fused.get_unchecked(ix as usize) }
    }

    /// Fetch a block by its dense id. Same SAFETY contract: block targets
    /// come from decoded edges of this function.
    #[inline(always)]
    fn blk(&self, ix: u32) -> &DBlock {
        debug_assert!((ix as usize) < self.blocks.len());
        unsafe { self.blocks.get_unchecked(ix as usize) }
    }

    /// Fetch a block's decoded instruction run. Same SAFETY contract:
    /// `[first, last)` is a run recorded by decode.
    #[inline(always)]
    fn inst_run(&self, first: u32, last: u32) -> &[DInst] {
        debug_assert!(first <= last && (last as usize) <= self.insts.len());
        unsafe { self.insts.get_unchecked(first as usize..last as usize) }
    }

    /// Fetch an edge's φ-move run. Same SAFETY contract.
    #[inline(always)]
    fn move_run(&self, first: u32, last: u32) -> &[Move] {
        debug_assert!(first <= last && (last as usize) <= self.moves.len());
        unsafe { self.moves.get_unchecked(first as usize..last as usize) }
    }

    /// Fetch a single φ-move. Same SAFETY contract.
    #[inline(always)]
    fn mv(&self, ix: u32) -> Move {
        debug_assert!((ix as usize) < self.moves.len());
        unsafe { *self.moves.get_unchecked(ix as usize) }
    }

    /// Pack `v` into a [`POp`]: its index in the unified slot array.
    /// Constants are interned on first use; `nregs` and `nargs` must be
    /// final before the first call. An index that overflows the packed
    /// width sets [`DFunc::overflow`] (surfaced as a typed decode error)
    /// instead of panicking.
    fn pack(&mut self, v: Value) -> POp {
        let ix = match v {
            Value::Inst(id) => id.0 as usize,
            Value::Arg(n) => self.nregs + n as usize,
            Value::Const(c) => {
                let ix = self.nregs + self.nargs + self.consts.len();
                self.consts.push(Val::from(c));
                ix
            }
        };
        match u32::try_from(ix) {
            Ok(p) => p,
            Err(_) => {
                self.overflow = true;
                0
            }
        }
    }
}

/// Whether `op` is one of the specialized compare opcodes (fusable into a
/// [`DTerm::CmpBr`]).
fn is_cmp(op: DOp) -> bool {
    matches!(
        op,
        DOp::IEq
            | DOp::INe
            | DOp::ILt
            | DOp::ILe
            | DOp::IGt
            | DOp::IGe
            | DOp::FEq
            | DOp::FNe
            | DOp::FLt
            | DOp::FLe
            | DOp::FGt
            | DOp::FGe
            | DOp::IEqI
            | DOp::INeI
            | DOp::ILtI
            | DOp::ILeI
            | DOp::IGtI
            | DOp::IGeI
    )
}

/// Whether `op` is a reg-immediate compare (its second operand lives in
/// [`DFunc::imms`] at the instruction's `ext` index, not in a slot).
fn is_imm_cmp(op: DOp) -> bool {
    matches!(
        op,
        DOp::IEqI | DOp::INeI | DOp::ILtI | DOp::ILeI | DOp::IGtI | DOp::IGeI
    )
}

/// The reg-immediate variant of a binary opcode whose second operand is a
/// constant, or `None` when the opcode has no such variant.
fn imm_variant(d: DOp) -> Option<DOp> {
    Some(match d {
        DOp::Add => DOp::AddI,
        DOp::Sub => DOp::SubI,
        DOp::Mul => DOp::MulI,
        DOp::Div => DOp::DivI,
        DOp::Rem => DOp::RemI,
        DOp::And => DOp::AndI,
        DOp::Or => DOp::OrI,
        DOp::Xor => DOp::XorI,
        DOp::Shl => DOp::ShlI,
        DOp::Shr => DOp::ShrI,
        DOp::FAdd => DOp::FAddI,
        DOp::FSub => DOp::FSubI,
        DOp::FMul => DOp::FMulI,
        DOp::FDiv => DOp::FDivI,
        DOp::IEq => DOp::IEqI,
        DOp::INe => DOp::INeI,
        DOp::ILt => DOp::ILtI,
        DOp::ILe => DOp::ILeI,
        DOp::IGt => DOp::IGtI,
        DOp::IGe => DOp::IGeI,
        _ => return None,
    })
}

/// The specialized opcode for a pure `op`, valid only at its natural arity.
fn specialize(op: Op, arity: usize) -> Option<DOp> {
    let d = match op {
        Op::Add => DOp::Add,
        Op::Sub => DOp::Sub,
        Op::Mul => DOp::Mul,
        Op::Div => DOp::Div,
        Op::Rem => DOp::Rem,
        Op::And => DOp::And,
        Op::Or => DOp::Or,
        Op::Xor => DOp::Xor,
        Op::Shl => DOp::Shl,
        Op::Shr => DOp::Shr,
        Op::FAdd => DOp::FAdd,
        Op::FSub => DOp::FSub,
        Op::FMul => DOp::FMul,
        Op::FDiv => DOp::FDiv,
        Op::Gep => DOp::Gep,
        Op::ICmp(p) => match p {
            CmpOp::Eq => DOp::IEq,
            CmpOp::Ne => DOp::INe,
            CmpOp::Lt => DOp::ILt,
            CmpOp::Le => DOp::ILe,
            CmpOp::Gt => DOp::IGt,
            CmpOp::Ge => DOp::IGe,
        },
        Op::FCmp(p) => match p {
            CmpOp::Eq => DOp::FEq,
            CmpOp::Ne => DOp::FNe,
            CmpOp::Lt => DOp::FLt,
            CmpOp::Le => DOp::FLe,
            CmpOp::Gt => DOp::FGt,
            CmpOp::Ge => DOp::FGe,
        },
        Op::FSqrt => DOp::FSqrt,
        Op::IToF => DOp::IToF,
        Op::FToI => DOp::FToI,
        Op::Select => DOp::Select,
        Op::Load | Op::Store | Op::Call(_) | Op::Phi => return None,
    };
    let natural = match d {
        DOp::FSqrt | DOp::IToF | DOp::FToI => 1,
        DOp::Select => 3,
        _ => 2,
    };
    (arity == natural).then_some(d)
}

fn decode_func(f: &Function, fid: FuncId) -> Result<DFunc, ExecError> {
    // Slot layout is [registers | arguments | constants]; the argument
    // window must be sized before any operand packs, so scan every operand
    // position (instruction args — φ incomings included — and terminator
    // reads) for the highest `Value::Arg` index.
    let mut nargs = 0usize;
    let mut note = |v: &Value| {
        if let Value::Arg(n) = *v {
            nargs = nargs.max(n as usize + 1);
        }
    };
    for inst in &f.insts {
        inst.args.iter().for_each(&mut note);
    }
    for block in &f.blocks {
        match &block.term {
            Terminator::CondBr { cond, .. } => note(cond),
            Terminator::Ret(Some(v)) => note(v),
            _ => {}
        }
    }
    let mut df = DFunc {
        nregs: f.insts.len(),
        nargs,
        ..DFunc::default()
    };

    for (bix, block) in f.blocks.iter().enumerate() {
        let first = df.insts.len() as u32;
        let mut has_call = false;
        // Walker step count of the block body (fusion shrinks the decoded
        // stream but never the step cost).
        let mut steps = 0u64;
        for &iid in &block.insts {
            let inst = f.inst(iid);
            if inst.is_phi() {
                // Leading φs become edge moves; non-leading φs are skipped
                // by the walker (never executed, never defined) and are
                // likewise not decoded.
                continue;
            }
            steps += 1;
            let di = match inst.op {
                Op::Load => DInst {
                    op: if inst.ty == Type::F64 {
                        DOp::LoadF
                    } else {
                        DOp::LoadI
                    },
                    dst: iid.0,
                    a: df.pack(inst.args[0]),
                    b: 0,
                    ext: 0,
                    iid,
                },
                Op::Store => DInst {
                    op: DOp::Store,
                    dst: 0,
                    a: df.pack(inst.args[0]),
                    b: df.pack(inst.args[1]),
                    ext: 0,
                    iid,
                },
                Op::Call(callee) => {
                    has_call = true;
                    let args = df.xargs.len() as u32;
                    for &a in &inst.args {
                        let p = df.pack(a);
                        df.xargs.push(p);
                    }
                    let ext = df.calls.len() as u32;
                    df.calls.push(DCall {
                        callee,
                        args,
                        nargs: inst.args.len() as u32,
                    });
                    DInst {
                        op: DOp::Call,
                        dst: iid.0,
                        a: 0,
                        b: 0,
                        ext,
                        iid,
                    }
                }
                Op::Phi => unreachable!("phis filtered above"),
                op => match specialize(op, inst.args.len()) {
                    Some(d) => {
                        // Binary op with a constant second operand: the
                        // constant's conversion (`as_int` / `as_float`) is
                        // exact and value-independent, so it folds into the
                        // immediate at decode time. Binding the immediate
                        // variant and the constant together keeps this arm
                        // unwrap-free.
                        if let (Some(opi), Some(&Value::Const(c))) =
                            (imm_variant(d), inst.args.get(1))
                        {
                            let a = df.pack(inst.args[0]);
                            let v = Val::from(c);
                            let imm =
                                if matches!(d, DOp::FAdd | DOp::FSub | DOp::FMul | DOp::FDiv) {
                                    v.as_float().to_bits() as i64
                                } else {
                                    v.as_int()
                                };
                            let ext = df.imms.len() as u32;
                            df.imms.push(imm);
                            DInst {
                                op: opi,
                                dst: iid.0,
                                a,
                                b: 0,
                                ext,
                                iid,
                            }
                        } else {
                            let a = df.pack(inst.args[0]);
                            let b = if inst.args.len() > 1 {
                                df.pack(inst.args[1])
                            } else {
                                0
                            };
                            let ext = match d {
                                DOp::Select => df.pack(inst.args[2]),
                                DOp::Gep => {
                                    let ix = df.imms.len() as u32;
                                    df.imms.push(inst.imm);
                                    ix
                                }
                                _ => 0,
                            };
                            DInst {
                                op: d,
                                dst: iid.0,
                                a,
                                b,
                                ext,
                                iid,
                            }
                        }
                    }
                    None => {
                        // Arity mismatch: replay the walker's buffered
                        // read + eval_pure, including its panics.
                        let args = df.xargs.len() as u32;
                        for &a in &inst.args {
                            let p = df.pack(a);
                            df.xargs.push(p);
                        }
                        let ext = df.pures.len() as u32;
                        df.pures.push(DPure {
                            op,
                            imm: inst.imm,
                            args,
                            nargs: inst.args.len() as u32,
                        });
                        DInst {
                            op: DOp::Pure,
                            dst: iid.0,
                            a: 0,
                            b: 0,
                            ext,
                            iid,
                        }
                    }
                },
            };
            // Peephole: a load/store addressed by the immediately preceding
            // gep's result fuses into one superinstruction. (A register
            // operand's packed index is the defining id, so `addr ==
            // prev.dst` identifies the gep's result exactly; the gep's
            // register is still written by the fused arm.)
            let fused = match di.op {
                // fmul feeding fadd: the accumulate step of every MAC.
                DOp::FAdd if df.insts.len() > first as usize => match df.insts.last().copied() {
                    Some(prev)
                        if prev.op == DOp::FMul && (di.a == prev.dst || di.b == prev.dst) =>
                    {
                        let (op, c) = if di.a == prev.dst {
                            (DOp::FMulAddA, di.b)
                        } else {
                            (DOp::FMulAddB, di.a)
                        };
                        let ext = df.fused.len() as u32;
                        df.fused.push(DFused {
                            imm: i64::from(c),
                            gep_dst: prev.dst,
                            mem_iid: di.iid,
                        });
                        Some(DInst {
                            op,
                            dst: di.dst,
                            a: prev.a,
                            b: prev.b,
                            ext,
                            iid: prev.iid,
                        })
                    }
                    _ => None,
                },
                // An integer load folded straight into an accumulator:
                // `acc = add(acc, load(..))`. The second side-table entry
                // goes in adjacently so one `ext` reaches both.
                DOp::Add if df.insts.len() > first as usize => match df.insts.last().copied() {
                    Some(prev)
                        if prev.op == DOp::GepLoadI
                            && di.b == prev.dst
                            && df.fused.len() as u32 == prev.ext + 1 =>
                    {
                        // The accumulator operand; the injected fusion bug
                        // (fuzzer validation) records the load's own
                        // register here instead, which diverges from the
                        // walker whenever acc != loaded value.
                        let acc = if BREAK_GEP_LOAD_ADD.with(Cell::get) {
                            prev.dst
                        } else {
                            di.a
                        };
                        df.fused.push(DFused {
                            imm: i64::from(acc),
                            gep_dst: prev.dst,
                            mem_iid: di.iid,
                        });
                        Some(DInst {
                            op: DOp::GepLoadAdd,
                            dst: di.dst,
                            a: prev.a,
                            b: prev.b,
                            ext: prev.ext,
                            iid: prev.iid,
                        })
                    }
                    _ => None,
                },
                // An integer load converted straight to float (the fp
                // accumulator fold's first step).
                DOp::IToF if df.insts.len() > first as usize => match df.insts.last().copied() {
                    Some(prev) if prev.op == DOp::GepLoadI && di.a == prev.dst => Some(DInst {
                        op: DOp::GepLoadItoF,
                        dst: di.dst,
                        a: prev.a,
                        b: prev.b,
                        ext: prev.ext,
                        iid: prev.iid,
                    }),
                    _ => None,
                },
                // `(x + salt) & mask`: the generated address pattern. The
                // and's immediate was pushed right after the add's, so one
                // `ext` reaches both (guarded below for safety).
                DOp::AndI if df.insts.len() > first as usize => match df.insts.last().copied() {
                    Some(prev)
                        if prev.op == DOp::AddI && di.a == prev.dst && di.ext == prev.ext + 1 =>
                    {
                        Some(DInst {
                            op: DOp::AddAndI,
                            dst: di.dst,
                            a: prev.a,
                            b: prev.dst,
                            ext: prev.ext,
                            iid: prev.iid,
                        })
                    }
                    _ => None,
                },
                DOp::LoadI | DOp::LoadF | DOp::Store if df.insts.len() > first as usize => {
                    let addr = if di.op == DOp::Store { di.b } else { di.a };
                    match df.insts.last().copied() {
                        Some(prev) if prev.op == DOp::Gep && addr == prev.dst => {
                            let ext = df.fused.len() as u32;
                            df.fused.push(DFused {
                                imm: df.imms[prev.ext as usize],
                                gep_dst: prev.dst,
                                mem_iid: di.iid,
                            });
                            let op = match di.op {
                                DOp::LoadI => DOp::GepLoadI,
                                DOp::LoadF => DOp::GepLoadF,
                                _ => DOp::GepStore,
                            };
                            // GepStore carries the store's *value* operand
                            // in `dst` (stores have no destination
                            // register).
                            let dst = if di.op == DOp::Store { di.a } else { di.dst };
                            Some(DInst {
                                op,
                                dst,
                                a: prev.a,
                                b: prev.b,
                                ext,
                                iid: prev.iid,
                            })
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            match fused {
                // Fusion arms only fire when the block already decoded an
                // instruction, so the slot exists; if-let keeps the path
                // panic-free regardless.
                Some(fi) => {
                    if let Some(slot) = df.insts.last_mut() {
                        *slot = fi;
                    }
                }
                None => df.insts.push(di),
            }
        }
        let pred = BlockId(bix as u32);
        let term = match &block.term {
            Terminator::Br(t) => DTerm::Jump(decode_edge(f, pred, *t, &mut df)),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => DTerm::CondBr {
                cond: df.pack(*cond),
                t: decode_edge(f, pred, *then_bb, &mut df),
                f: decode_edge(f, pred, *else_bb, &mut df),
            },
            Terminator::Ret(v) => DTerm::Ret(v.map(|v| df.pack(v))),
            Terminator::Unreachable => DTerm::Unreachable,
        };
        // Peephole: a conditional branch on the block's own last compare
        // fuses into the terminator (the compare's step stays accounted in
        // `cost`; its register is still written by the fused arm).
        let term = match term {
            DTerm::CondBr { cond, t, f } => {
                let prev = if df.insts.len() > first as usize {
                    df.insts.last().copied()
                } else {
                    None
                };
                match prev {
                    Some(p) if is_cmp(p.op) && p.dst == cond => {
                        df.insts.pop();
                        DTerm::CmpBr {
                            op: p.op,
                            a: p.a,
                            // Imm compares keep their operand in `ext`.
                            b: if is_imm_cmp(p.op) { p.ext } else { p.b },
                            dst: p.dst,
                            iid: p.iid,
                            t,
                            f,
                        }
                    }
                    _ => DTerm::CondBr { cond, t, f },
                }
            }
            other => other,
        };
        let last = df.insts.len() as u32;
        df.blocks.push(DBlock {
            first,
            last,
            cost: steps + 1,
            has_call,
            term,
        });
    }

    // Entry-block leading φs have no predecessor to resolve against; the
    // walker fails on the first one before reading anything.
    df.entry_phi_err = f
        .block(f.entry())
        .insts
        .iter()
        .map(|&iid| f.inst(iid))
        .take_while(|i| i.is_phi())
        .next()
        .map(|_| f.block(f.entry()).insts[0]);

    df.nslots = df.nregs + df.nargs + df.consts.len();
    if df.overflow {
        return Err(ExecError::ModuleTooLarge(fid));
    }
    Ok(df)
}

/// Pre-resolve the φ-moves for edge `pred -> succ`. Decoding stops at the
/// first φ with no incoming entry for `pred` (recorded in `phi_err`): the
/// walker aborts its φ scan there, so later φs are never read.
fn decode_edge(f: &Function, pred: BlockId, succ: BlockId, df: &mut DFunc) -> DEdge {
    let mv_start = df.moves.len() as u32;
    let mut phi_err = None;
    for &iid in &f.block(succ).insts {
        let inst = f.inst(iid);
        if !inst.is_phi() {
            break;
        }
        match inst.phi_incoming(pred) {
            Some(v) => {
                let src = df.pack(v);
                df.moves.push(Move {
                    dst: iid.0,
                    src,
                    iid,
                });
            }
            None => {
                phi_err = Some(iid);
                break;
            }
        }
    }
    DEdge {
        to: succ.0,
        mv_start,
        mv_end: df.moves.len() as u32,
        phi_err,
    }
}

/// One register slot: the value plus the generation stamp that says
/// whether it is defined. Fused into one struct so a read touches a single
/// cache line and pays a single bounds check.
#[derive(Debug, Clone, Copy)]
struct Slot {
    v: Val,
    stamp: u32,
}

/// The stamp given to constant slots: compares `>=` any live generation,
/// so constants stay defined across resets without per-call restamping.
/// The generation counter never reaches it (hard reset fires first).
const CONST_STAMP: u32 = u32::MAX;

/// A generation-stamped register frame. A slot is defined iff its stamp
/// is `>=` the frame's current generation, so re-initialising a recycled
/// frame is a single counter bump instead of an O(slots) clear. Register
/// and argument slots are stamped with the current generation (arguments
/// at reset, registers on write); constant slots carry [`CONST_STAMP`] and
/// are only rewritten when the frame changes owning function — pool reuse
/// is LIFO, so repeated calls to the same function restamp nothing.
#[derive(Debug)]
pub(crate) struct FrameBuf {
    slots: Vec<Slot>,
    gen: u32,
    /// Function index whose constants currently occupy the const window
    /// (`u32::MAX` = none).
    const_owner: u32,
    /// The stamped const window `[start, end)`, cleared before a new owner
    /// stamps its own (windows of different functions overlap).
    const_window: (u32, u32),
    /// Scratch for φ parallel moves (reads land here before any write).
    scratch: Vec<(u32, Val)>,
}

impl Default for FrameBuf {
    fn default() -> FrameBuf {
        FrameBuf {
            slots: Vec::new(),
            gen: 0,
            const_owner: u32::MAX,
            const_window: (0, 0),
            scratch: Vec::new(),
        }
    }
}

impl FrameBuf {
    /// Prepare the frame for a call of function `func_ix` (decoded as
    /// `df`): grow to its unified slot count, invalidate register and
    /// argument slots by bumping the generation, stamp the arguments, and —
    /// only when the owning function changed — restamp the const window.
    fn reset(&mut self, df: &DFunc, args: &[Val], func_ix: u32) {
        if self.slots.len() < df.nslots {
            self.slots.resize(
                df.nslots,
                Slot {
                    v: Val::Int(0),
                    stamp: 0,
                },
            );
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == CONST_STAMP {
            // The generation caught up with the const sentinel (or
            // wrapped): stale stamps could alias. Hard-reset.
            for s in &mut self.slots {
                s.stamp = 0;
            }
            self.gen = 1;
            self.const_owner = u32::MAX;
            self.const_window = (0, 0);
        }
        let gen = self.gen;
        // Arg slots beyond the caller-provided `args` keep a stale stamp;
        // reading one routes to the cold path, which replays the walker's
        // `args[n]` out-of-range panic.
        for (i, &v) in args.iter().take(df.nargs).enumerate() {
            self.slots[df.nregs + i] = Slot { v, stamp: gen };
        }
        if self.const_owner != func_ix {
            // Clear the previous owner's window first: another function's
            // const slots may be this one's register/argument slots, and
            // [`CONST_STAMP`] would make them spuriously defined.
            let (s, e) = self.const_window;
            for slot in &mut self.slots[s as usize..e as usize] {
                slot.stamp = 0;
            }
            let base = df.nregs + df.nargs;
            for (i, &v) in df.consts.iter().enumerate() {
                self.slots[base + i] = Slot {
                    v,
                    stamp: CONST_STAMP,
                };
            }
            self.const_owner = func_ix;
            self.const_window = (base as u32, df.nslots as u32);
        }
    }

    /// Read slot `ix`. SAFETY contract: `ix` comes from a packed operand of
    /// the function this frame was `reset` for, so `ix < nslots <=
    /// slots.len()` by construction ([`DFunc::pack`] only emits in-range
    /// indices and `reset` grows the buffer to `nslots`).
    #[inline(always)]
    fn get(&self, ix: usize) -> Option<Val> {
        debug_assert!(ix < self.slots.len());
        let s = unsafe { *self.slots.get_unchecked(ix) };
        if s.stamp >= self.gen {
            Some(s.v)
        } else {
            None
        }
    }

    /// Write slot `slot`. Same SAFETY contract as [`FrameBuf::get`]:
    /// destinations are register slots (`slot < nregs`).
    #[inline(always)]
    fn set(&mut self, slot: u32, v: Val) {
        debug_assert!((slot as usize) < self.slots.len());
        let gen = self.gen;
        unsafe {
            *self.slots.get_unchecked_mut(slot as usize) = Slot { v, stamp: gen };
        }
    }
}

/// Recycles [`FrameBuf`]s across calls (and across runs: the pool lives on
/// the `Interp`). Depth-bounded, so it holds at most `max_depth + 1` frames.
#[derive(Debug, Default)]
pub(crate) struct FramePool {
    free: RefCell<Vec<FrameBuf>>,
}

impl FramePool {
    fn acquire(&self, df: &DFunc, args: &[Val], func_ix: u32) -> FrameBuf {
        let mut frame = self.free.borrow_mut().pop().unwrap_or_default();
        frame.reset(df, args, func_ix);
        frame
    }

    fn release(&self, frame: FrameBuf) {
        self.free.borrow_mut().push(frame);
    }
}

/// The slow path for an unstamped slot read. Register slots map to
/// [`ExecError::UndefinedValue`] at the attributed id; argument slots only
/// stay unstamped when the caller passed too few arguments, which maps to
/// [`ExecError::MissingArgument`] — the same typed error the reference
/// walker returns for an out-of-range `args[n]` read. Constant slots are
/// always stamped and can never reach this.
#[cold]
#[inline(never)]
fn undef_err(df: &DFunc, args: &[Val], ix: usize, func: FuncId, at: InstId) -> ExecError {
    if ix >= df.nregs {
        let n = ix - df.nregs;
        debug_assert!(n >= args.len(), "stamped arg slot reached the undefined path");
        return ExecError::MissingArgument(func, n as u32);
    }
    ExecError::UndefinedValue(func, at)
}

/// The float-compare ordering used by [`eval_pure`]: unordered (NaN)
/// collapses to `Equal`.
#[inline(always)]
fn ford(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// One run's worth of engine context: decoded code, frame pool, limits.
pub(crate) struct ExecCtx<'a> {
    /// Decoded module.
    pub engine: &'a Engine,
    /// Frame recycler (owned by the `Interp`, shared across runs).
    pub pool: &'a FramePool,
    /// Call-depth ceiling.
    pub max_depth: usize,
    /// Resident-page ceiling for [`Memory`] (resource governor);
    /// `usize::MAX` means uncapped. Checked only when a store allocates a
    /// fresh page, so resident-page stores pay nothing.
    pub max_pages: usize,
}

impl ExecCtx<'_> {
    /// Execute `func`. Mirrors the reference walker's `call` exactly —
    /// same events, same results, same errors, same step accounting on
    /// success.
    pub(crate) fn call<S: TraceSink + ?Sized>(
        &self,
        func: FuncId,
        args: &[Val],
        mem: &mut Memory,
        sink: &mut S,
        depth: usize,
        fuel: &mut Fuel<'_>,
    ) -> Result<Option<Val>, ExecError> {
        if depth > self.max_depth {
            return Err(ExecError::CallDepth(self.max_depth));
        }
        let df = &self.engine.funcs[func.index()];
        sink.enter(func);
        let mut frame = self.pool.acquire(df, args, func.index() as u32);
        let result = self.exec(df, func, args, &mut frame, mem, sink, depth, fuel);
        self.pool.release(frame);
        result
    }


    #[allow(clippy::too_many_arguments)]
    fn exec<S: TraceSink + ?Sized>(
        &self,
        df: &DFunc,
        func: FuncId,
        args: &[Val],
        frame: &mut FrameBuf,
        mem: &mut Memory,
        sink: &mut S,
        depth: usize,
        fuel: &mut Fuel<'_>,
    ) -> Result<Option<Val>, ExecError> {
        let mut cur: u32 = 0; // entry block
        sink.block(func, BlockId(cur));
        if let Some(iid) = df.entry_phi_err {
            return Err(ExecError::PhiMissingIncoming(func, iid));
        }

        // Operand read attributing an undefined register to `$iid` (the
        // consuming instruction for body/φ reads). The hot path is one
        // indexed load plus a generation compare; everything else lives in
        // the cold `undef_err`.
        macro_rules! r {
            ($iid:expr, $p:expr) => {
                match frame.get($p as usize) {
                    Some(v) => v,
                    None => return Err(undef_err(df, args, $p as usize, func, $iid)),
                }
            };
        }
        // Terminator operand read: terminators have no id of their own, so
        // an undefined register is attributed to its *defining*
        // instruction — which is exactly the operand's slot index (only
        // register slots can be undefined without panicking).
        macro_rules! rt {
            ($p:expr) => {
                match frame.get($p as usize) {
                    Some(v) => v,
                    None => return Err(undef_err(df, args, $p as usize, func, InstId($p))),
                }
            };
        }
        // The opcode dispatch, expanded into both accounting loops below so
        // the hot arms inline straight into the loop body — a function call
        // per instruction costs more than most of these instructions.
        // Reads happen in the walker's operand order (`a`, `b`, then `ext`)
        // so undefined-value errors fire identically. The rare arms (calls,
        // arity-mismatched pures) are outlined to keep the loop compact.
        macro_rules! dispatch {
            ($di:expr, $batched:expr) => {{
                let di = $di;
                let batched = $batched;
                match di.op {
                    DOp::Add => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a.wrapping_add(b)));
                    }
                    DOp::Sub => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a.wrapping_sub(b)));
                    }
                    DOp::Mul => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a.wrapping_mul(b)));
                    }
                    DOp::Div => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(if b == 0 { 0 } else { a.wrapping_div(b) }));
                    }
                    DOp::Rem => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(if b == 0 { 0 } else { a.wrapping_rem(b) }));
                    }
                    DOp::And => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a & b));
                    }
                    DOp::Or => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a | b));
                    }
                    DOp::Xor => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a ^ b));
                    }
                    DOp::Shl => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a.wrapping_shl(b as u32 & 63)));
                    }
                    DOp::Shr => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int(a.wrapping_shr(b as u32 & 63)));
                    }
                    DOp::FAdd => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Float(a + b));
                    }
                    DOp::FSub => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Float(a - b));
                    }
                    DOp::FMul => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Float(a * b));
                    }
                    DOp::FDiv => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Float(if b == 0.0 { 0.0 } else { a / b }));
                    }
                    DOp::FSqrt => {
                        let a = r!(di.iid, di.a).as_float();
                        frame.set(di.dst, Val::Float(a.abs().sqrt()));
                    }
                    DOp::IEq => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a == b) as i64));
                    }
                    DOp::INe => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a != b) as i64));
                    }
                    DOp::ILt => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a < b) as i64));
                    }
                    DOp::ILe => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a <= b) as i64));
                    }
                    DOp::IGt => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a > b) as i64));
                    }
                    DOp::IGe => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        frame.set(di.dst, Val::Int((a >= b) as i64));
                    }
                    DOp::FEq => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) == Ordering::Equal) as i64));
                    }
                    DOp::FNe => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) != Ordering::Equal) as i64));
                    }
                    DOp::FLt => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) == Ordering::Less) as i64));
                    }
                    DOp::FLe => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) != Ordering::Greater) as i64));
                    }
                    DOp::FGt => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) == Ordering::Greater) as i64));
                    }
                    DOp::FGe => {
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        frame.set(di.dst, Val::Int((ford(a, b) != Ordering::Less) as i64));
                    }
                    DOp::AddI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_add(b)));
                    }
                    DOp::SubI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_sub(b)));
                    }
                    DOp::MulI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_mul(b)));
                    }
                    DOp::DivI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(if b == 0 { 0 } else { a.wrapping_div(b) }));
                    }
                    DOp::RemI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(if b == 0 { 0 } else { a.wrapping_rem(b) }));
                    }
                    DOp::AndI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a & b));
                    }
                    DOp::OrI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a | b));
                    }
                    DOp::XorI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a ^ b));
                    }
                    DOp::ShlI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_shl(b as u32 & 63)));
                    }
                    DOp::ShrI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_shr(b as u32 & 63)));
                    }
                    DOp::FAddI => {
                        let a = r!(di.iid, di.a).as_float();
                        let b = f64::from_bits(df.imm(di.ext) as u64);
                        frame.set(di.dst, Val::Float(a + b));
                    }
                    DOp::FSubI => {
                        let a = r!(di.iid, di.a).as_float();
                        let b = f64::from_bits(df.imm(di.ext) as u64);
                        frame.set(di.dst, Val::Float(a - b));
                    }
                    DOp::FMulI => {
                        let a = r!(di.iid, di.a).as_float();
                        let b = f64::from_bits(df.imm(di.ext) as u64);
                        frame.set(di.dst, Val::Float(a * b));
                    }
                    DOp::FDivI => {
                        let a = r!(di.iid, di.a).as_float();
                        let b = f64::from_bits(df.imm(di.ext) as u64);
                        frame.set(di.dst, Val::Float(if b == 0.0 { 0.0 } else { a / b }));
                    }
                    DOp::IEqI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a == b) as i64));
                    }
                    DOp::INeI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a != b) as i64));
                    }
                    DOp::ILtI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a < b) as i64));
                    }
                    DOp::ILeI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a <= b) as i64));
                    }
                    DOp::IGtI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a > b) as i64));
                    }
                    DOp::IGeI => {
                        let a = r!(di.iid, di.a).as_int();
                        let b = df.imm(di.ext);
                        frame.set(di.dst, Val::Int((a >= b) as i64));
                    }
                    DOp::Select => {
                        // All three operands are read before selecting,
                        // exactly as the walker's buffered read does.
                        let c = r!(di.iid, di.a);
                        let t = r!(di.iid, di.b);
                        let e = r!(di.iid, di.ext);
                        frame.set(di.dst, if c.as_bool() { t } else { e });
                    }
                    DOp::IToF => {
                        let a = r!(di.iid, di.a).as_int();
                        frame.set(di.dst, Val::Float(a as f64));
                    }
                    DOp::FToI => {
                        let a = r!(di.iid, di.a).as_float();
                        frame.set(di.dst, Val::Int(a as i64));
                    }
                    DOp::Gep => {
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let imm = df.imm(di.ext);
                        frame.set(di.dst, Val::Int(a.wrapping_add(b.wrapping_mul(imm))));
                    }
                    DOp::LoadI => {
                        let addr = r!(di.iid, di.a).as_int() as u64;
                        sink.mem(func, di.iid, addr, false);
                        frame.set(di.dst, Val::Int(mem.peek(addr) as i64));
                    }
                    DOp::LoadF => {
                        let addr = r!(di.iid, di.a).as_int() as u64;
                        sink.mem(func, di.iid, addr, false);
                        frame.set(di.dst, Val::Float(f64::from_bits(mem.peek(addr))));
                    }
                    DOp::Store => {
                        let v = r!(di.iid, di.a);
                        let addr = r!(di.iid, di.b).as_int() as u64;
                        // The event precedes the governor check in both
                        // engines: the walker emits `sink.mem` before its
                        // capped store too, so event streams stay identical
                        // on MemLimit.
                        sink.mem(func, di.iid, addr, true);
                        if mem.store_capped(addr, v, self.max_pages).is_err() {
                            return Err(ExecError::MemLimit(func, di.iid));
                        }
                    }
                    // Fused arms: two walker steps each. The gep's register
                    // write still happens (later instructions may read the
                    // address), and in the slow path the second step gets
                    // its own fuel tick *between* the halves, preserving
                    // the walker's exact StepLimit/Cancelled cut points —
                    // the second half's step belongs to the second
                    // instruction, so the tick attributes to `fu.mem_iid`.
                    DOp::GepLoadI => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let addr = a.wrapping_add(b.wrapping_mul(fu.imm));
                        frame.set(fu.gep_dst, Val::Int(addr));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let addr = addr as u64;
                        sink.mem(func, fu.mem_iid, addr, false);
                        frame.set(di.dst, Val::Int(mem.peek(addr) as i64));
                    }
                    DOp::GepLoadF => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let addr = a.wrapping_add(b.wrapping_mul(fu.imm));
                        frame.set(fu.gep_dst, Val::Int(addr));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let addr = addr as u64;
                        sink.mem(func, fu.mem_iid, addr, false);
                        frame.set(di.dst, Val::Float(f64::from_bits(mem.peek(addr))));
                    }
                    DOp::GepStore => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let addr = a.wrapping_add(b.wrapping_mul(fu.imm));
                        frame.set(fu.gep_dst, Val::Int(addr));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let v = r!(fu.mem_iid, di.dst);
                        let addr = addr as u64;
                        sink.mem(func, fu.mem_iid, addr, true);
                        // Mid-fusion governor hit: attributed to the
                        // original store's id (`fu.mem_iid`), matching the
                        // walker's per-instruction attribution exactly.
                        if mem.store_capped(addr, v, self.max_pages).is_err() {
                            return Err(ExecError::MemLimit(func, fu.mem_iid));
                        }
                    }
                    DOp::FMulAddA => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        let t = a * b;
                        frame.set(fu.gep_dst, Val::Float(t));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let c = r!(fu.mem_iid, fu.imm as u32).as_float();
                        frame.set(di.dst, Val::Float(t + c));
                    }
                    DOp::FMulAddB => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_float(), r!(di.iid, di.b).as_float());
                        let t = a * b;
                        frame.set(fu.gep_dst, Val::Float(t));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let c = r!(fu.mem_iid, fu.imm as u32).as_float();
                        frame.set(di.dst, Val::Float(c + t));
                    }
                    DOp::AddAndI => {
                        let a = r!(di.iid, di.a).as_int();
                        let t = a.wrapping_add(df.imm(di.ext));
                        frame.set(di.b, Val::Int(t));
                        if !batched {
                            // The and's register is its own id (di.dst).
                            fuel.tick(func, Some(InstId(di.dst)))?;
                        }
                        frame.set(di.dst, Val::Int(t & df.imm(di.ext + 1)));
                    }
                    DOp::GepLoadAdd => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let addr = a.wrapping_add(b.wrapping_mul(fu.imm));
                        frame.set(fu.gep_dst, Val::Int(addr));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let fu2 = df.fu(di.ext + 1);
                        let addr = addr as u64;
                        sink.mem(func, fu.mem_iid, addr, false);
                        let v = mem.peek(addr) as i64;
                        frame.set(fu2.gep_dst, Val::Int(v));
                        if !batched {
                            // Third step: the accumulating add (fu2 carries
                            // its id in `mem_iid`).
                            fuel.tick(func, Some(fu2.mem_iid))?;
                        }
                        let acc = r!(fu2.mem_iid, fu2.imm as u32).as_int();
                        frame.set(di.dst, Val::Int(acc.wrapping_add(v)));
                    }
                    DOp::GepLoadItoF => {
                        let fu = df.fu(di.ext);
                        let (a, b) = (r!(di.iid, di.a).as_int(), r!(di.iid, di.b).as_int());
                        let addr = a.wrapping_add(b.wrapping_mul(fu.imm));
                        frame.set(fu.gep_dst, Val::Int(addr));
                        if !batched {
                            fuel.tick(func, Some(fu.mem_iid))?;
                        }
                        let addr = addr as u64;
                        sink.mem(func, fu.mem_iid, addr, false);
                        let v = mem.peek(addr) as i64;
                        frame.set(fu.mem_iid.0, Val::Int(v));
                        if !batched {
                            // Third step: the itof, whose register is its
                            // own id (di.dst).
                            fuel.tick(func, Some(InstId(di.dst)))?;
                        }
                        frame.set(di.dst, Val::Float(v as f64));
                    }
                    DOp::Call => {
                        self.do_call(df, di, func, args, frame, mem, sink, depth, fuel)?;
                    }
                    DOp::Pure => {
                        do_pure(df, di, func, args, frame)?;
                    }
                }
            }};
        }

        loop {
            let b = df.blk(cur);

            // Batched accounting: debit the whole block once up front when
            // no call shares the budget and the fuel covers it — both the
            // step budget *and* the cancellation countdown, so a batch can
            // never skip a checkpoint the per-step path would take.
            // Otherwise fall back to per-instruction accounting (which
            // preserves the walker's exact `StepLimit`/`Cancelled` cut
            // points). The dispatch match is expanded once and shared by
            // both modes — `batched` is a single well-predicted branch per
            // instruction, while a second expansion would double this
            // function's code and (in debug builds, where nothing
            // coalesces) its stack frame, overflowing deep call-recursion
            // on 2 MiB test-thread stacks.
            let batched = !b.has_call && fuel.try_batch(b.cost);
            for di in df.inst_run(b.first, b.last) {
                if !batched {
                    fuel.tick(func, Some(di.iid))?;
                }
                dispatch!(di, batched);
            }
            if !batched {
                // A fused CmpBr carries the compare's step as well: tick it
                // at the compare's id, then the terminator step at `None` —
                // the walker's exact order. (The walker writes the
                // compare's register between its two ticks; an error run's
                // register state is unobservable, so ticking both before
                // evaluating is equivalent.)
                if let DTerm::CmpBr { iid, .. } = &b.term {
                    fuel.tick(func, Some(*iid))?;
                }
                fuel.tick(func, None)?;
            }

            let edge = match &b.term {
                DTerm::Jump(e) => e,
                DTerm::CondBr { cond, t, f } => {
                    if rt!(*cond).as_bool() {
                        t
                    } else {
                        f
                    }
                }
                DTerm::CmpBr {
                    op,
                    a,
                    b: b2,
                    dst,
                    iid,
                    t,
                    f,
                } => {
                    let taken = match *op {
                        DOp::IEq | DOp::INe | DOp::ILt | DOp::ILe | DOp::IGt | DOp::IGe => {
                            let (x, y) = (r!(*iid, *a).as_int(), r!(*iid, *b2).as_int());
                            match *op {
                                DOp::IEq => x == y,
                                DOp::INe => x != y,
                                DOp::ILt => x < y,
                                DOp::ILe => x <= y,
                                DOp::IGt => x > y,
                                _ => x >= y,
                            }
                        }
                        DOp::IEqI | DOp::INeI | DOp::ILtI | DOp::ILeI | DOp::IGtI
                        | DOp::IGeI => {
                            let x = r!(*iid, *a).as_int();
                            let y = df.imm(*b2);
                            match *op {
                                DOp::IEqI => x == y,
                                DOp::INeI => x != y,
                                DOp::ILtI => x < y,
                                DOp::ILeI => x <= y,
                                DOp::IGtI => x > y,
                                _ => x >= y,
                            }
                        }
                        _ => {
                            let (x, y) = (r!(*iid, *a).as_float(), r!(*iid, *b2).as_float());
                            let o = ford(x, y);
                            match *op {
                                DOp::FEq => o == Ordering::Equal,
                                DOp::FNe => o != Ordering::Equal,
                                DOp::FLt => o == Ordering::Less,
                                DOp::FLe => o != Ordering::Greater,
                                DOp::FGt => o == Ordering::Greater,
                                _ => o != Ordering::Less,
                            }
                        }
                    };
                    frame.set(*dst, Val::Int(taken as i64));
                    if taken {
                        t
                    } else {
                        f
                    }
                }
                DTerm::Ret(v) => {
                    let out = match v {
                        Some(p) => Some(rt!(*p)),
                        None => None,
                    };
                    sink.exit(func);
                    return Ok(out);
                }
                DTerm::Unreachable => {
                    return Err(ExecError::ReachedUnreachable(func, BlockId(cur)));
                }
            };

            sink.edge(func, BlockId(cur), BlockId(edge.to));
            sink.block(func, BlockId(edge.to));

            // φ parallel move: all reads (each may fail at its φ's id),
            // then the missing-incoming check, then all writes. One- and
            // two-move edges (the overwhelmingly common cases: loop
            // induction φs) keep the values in registers instead of going
            // through the scratch buffer.
            match edge.mv_end - edge.mv_start {
                0 => {
                    if let Some(iid) = edge.phi_err {
                        return Err(ExecError::PhiMissingIncoming(func, iid));
                    }
                }
                1 => {
                    let m = df.mv(edge.mv_start);
                    let v = r!(m.iid, m.src);
                    if let Some(iid) = edge.phi_err {
                        return Err(ExecError::PhiMissingIncoming(func, iid));
                    }
                    frame.set(m.dst, v);
                }
                2 => {
                    let m0 = df.mv(edge.mv_start);
                    let m1 = df.mv(edge.mv_start + 1);
                    let v0 = r!(m0.iid, m0.src);
                    let v1 = r!(m1.iid, m1.src);
                    if let Some(iid) = edge.phi_err {
                        return Err(ExecError::PhiMissingIncoming(func, iid));
                    }
                    frame.set(m0.dst, v0);
                    frame.set(m1.dst, v1);
                }
                _ => {
                    frame.scratch.clear();
                    for m in df.move_run(edge.mv_start, edge.mv_end) {
                        let v = r!(m.iid, m.src);
                        frame.scratch.push((m.dst, v));
                    }
                    if let Some(iid) = edge.phi_err {
                        return Err(ExecError::PhiMissingIncoming(func, iid));
                    }
                    let scratch = std::mem::take(&mut frame.scratch);
                    for &(dst, v) in &scratch {
                        frame.set(dst, v);
                    }
                    frame.scratch = scratch;
                }
            }

            cur = edge.to;
        }
    }

    /// Outlined call arm of the dispatch loop: rare next to the arithmetic
    /// ops, and outlining keeps the hot loop's code compact.
    #[allow(clippy::too_many_arguments)]
    fn do_call<S: TraceSink + ?Sized>(
        &self,
        df: &DFunc,
        di: &DInst,
        func: FuncId,
        args: &[Val],
        frame: &mut FrameBuf,
        mem: &mut Memory,
        sink: &mut S,
        depth: usize,
        fuel: &mut Fuel<'_>,
    ) -> Result<(), ExecError> {
        let c = df.calls[di.ext as usize];
        let ops = &df.xargs[c.args as usize..(c.args + c.nargs) as usize];
        // Argument runs are short; an on-stack buffer avoids a heap
        // allocation per call. Long runs fall back to a Vec.
        let mut buf = [Val::Int(0); PURE_BUF];
        let mut spill;
        let call_args: &[Val] = if ops.len() <= PURE_BUF {
            for (i, &o) in ops.iter().enumerate() {
                match frame.get(o as usize) {
                    Some(v) => buf[i] = v,
                    None => return Err(undef_err(df, args, o as usize, func, di.iid)),
                }
            }
            &buf[..ops.len()]
        } else {
            spill = Vec::with_capacity(ops.len());
            for &o in ops {
                match frame.get(o as usize) {
                    Some(v) => spill.push(v),
                    None => return Err(undef_err(df, args, o as usize, func, di.iid)),
                }
            }
            &spill
        };
        let r = self.call(c.callee, call_args, mem, sink, depth + 1, fuel)?;
        frame.set(di.dst, r.unwrap_or(Val::Int(0)));
        Ok(())
    }
}

/// Outlined generic-pure fallback: an op whose operand count does not match
/// its natural arity replays the walker's buffered read + [`eval_pure`]
/// exactly, including its panics on missing operands.
fn do_pure(
    df: &DFunc,
    di: &DInst,
    func: FuncId,
    args: &[Val],
    frame: &mut FrameBuf,
) -> Result<(), ExecError> {
    let p = df.pures[di.ext as usize];
    let ops = &df.xargs[p.args as usize..(p.args + p.nargs) as usize];
    let mut buf = [Val::Int(0); PURE_BUF];
    for (i, &o) in ops.iter().enumerate() {
        match frame.get(o as usize) {
            Some(v) => buf[i.min(PURE_BUF - 1)] = v,
            None => return Err(undef_err(df, args, o as usize, func, di.iid)),
        }
    }
    let vals = &buf[..ops.len().min(PURE_BUF)];
    let v = eval_pure(p.op, vals, p.imm).ok_or(ExecError::MalformedOp(func, di.iid))?;
    frame.set(di.dst, v);
    Ok(())
}
