//! Core IR data structures: modules, functions, blocks, values.

use std::fmt;

use crate::inst::{Inst, Op, Terminator};

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a basic block within its [`Function`].
///
/// `BlockId(0)` is always the entry block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Index of an instruction within its [`Function`]'s instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

impl FuncId {
    /// Zero-based index as `usize`, for indexing into slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Zero-based index as `usize`, for indexing into slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl InstId {
    /// Zero-based index as `usize`, for indexing into slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Value types. Deliberately small: Needle's analyses only distinguish
/// integer vs floating-point operations (for FU selection and energy) and
/// pointer-typed values (for memory dependence statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Type {
    /// Boolean (comparison results, guards, predicates).
    I1,
    /// 64-bit integer. All integer arithmetic is 64-bit.
    #[default]
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Byte-addressed pointer.
    Ptr,
}

impl Type {
    /// Whether values of this type execute on the floating-point units.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constant {
    /// Integer constant (also used for booleans: 0 / 1).
    Int(i64),
    /// Floating point constant.
    Float(f64),
    /// Pointer constant (absolute byte address).
    Ptr(u64),
}

impl Constant {
    /// The type of this constant.
    pub fn ty(self) -> Type {
        match self {
            Constant::Int(_) => Type::I64,
            Constant::Float(_) => Type::F64,
            Constant::Ptr(_) => Type::Ptr,
        }
    }

    /// Integer payload.
    ///
    /// # Panics
    /// Panics if the constant is not an integer.
    pub fn as_int(self) -> i64 {
        match self {
            Constant::Int(v) => v,
            other => panic!("constant {other:?} is not an integer"),
        }
    }

    /// Float payload.
    ///
    /// # Panics
    /// Panics if the constant is not a float.
    pub fn as_float(self) -> f64 {
        match self {
            Constant::Float(v) => v,
            other => panic!("constant {other:?} is not a float"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => write!(f, "{v}"),
            Constant::Float(v) => write!(f, "{v:?}"),
            Constant::Ptr(v) => write!(f, "@{v:#x}"),
        }
    }
}

/// An SSA value: the result of an instruction, a function argument, or a
/// constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// The result of instruction `InstId` in the enclosing function.
    Inst(InstId),
    /// The `n`-th argument of the enclosing function.
    Arg(u32),
    /// An inline constant.
    Const(Constant),
}

impl Value {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Value {
        Value::Const(Constant::Int(v))
    }

    /// Float constant shorthand.
    pub fn float(v: f64) -> Value {
        Value::Const(Constant::Float(v))
    }

    /// Pointer constant shorthand.
    pub fn ptr(addr: u64) -> Value {
        Value::Const(Constant::Ptr(addr))
    }

    /// The constant payload, if this value is a constant.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The defining instruction, if this value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        Value::Const(c)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "{id}"),
            Value::Arg(n) => write!(f, "%arg{n}"),
            Value::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A basic block: a straight-line run of instructions ending in a
/// [`Terminator`]. φ instructions, if any, must be the leading instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Human-readable label (not required to be unique).
    pub name: String,
    /// Instructions in execution order (φs first). Terminator excluded.
    pub insts: Vec<InstId>,
    /// Control transfer out of this block.
    pub term: Terminator,
}

impl Block {
    /// A new block with the given label and an unreachable terminator that
    /// must be replaced before the function is executed or verified.
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

/// A function: an arena of instructions plus a list of basic blocks.
///
/// `BlockId(0)` is the entry block. SSA form is expected (each [`InstId`] is
/// defined once; uses must be dominated by definitions — see
/// [`crate::verify`]).
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name, unique within a [`Module`].
    pub name: String,
    /// Parameter types; `Value::Arg(i)` has type `params[i]`.
    pub params: Vec<Type>,
    /// Return type, or `None` for void.
    pub ret: Option<Type>,
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<Block>,
    /// Instruction arena. Blocks refer into this by [`InstId`].
    pub insts: Vec<Inst>,
}

impl Function {
    /// An empty function with a single (empty) entry block.
    pub fn new(name: impl Into<String>, params: &[Type], ret: Option<Type>) -> Function {
        Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            blocks: vec![Block::new("entry")],
            insts: Vec::new(),
        }
    }

    /// The entry block id (always `BlockId(0)`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Shared access to an instruction.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Append a new block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Append `inst` to the arena and to the end of block `bb`.
    pub fn push_inst(&mut self, bb: BlockId, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[bb.index()].insts.push(id);
        id
    }

    /// Iterate over all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The type of a value in the context of this function.
    pub fn value_type(&self, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.inst(id).ty,
            Value::Arg(n) => self.params[n as usize],
            Value::Const(c) => c.ty(),
        }
    }

    /// Total static instruction count excluding terminators.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Count of conditional branches (the terminators that create paths).
    pub fn num_cond_branches(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::CondBr { .. }))
            .count()
    }

    /// Static counts of memory operations (loads, stores) in block `bb`.
    pub fn block_mem_ops(&self, bb: BlockId) -> usize {
        self.block(bb)
            .insts
            .iter()
            .filter(|id| matches!(self.inst(**id).op, Op::Load | Op::Store))
            .count()
    }
}

/// A module: a named collection of functions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    /// The functions; indexed by [`FuncId`].
    pub funcs: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            funcs: Vec::new(),
        }
    }

    /// Append a function, returning its id.
    pub fn push(&mut self, func: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(func);
        id
    }

    /// Shared access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Look a function up by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Iterate over `(FuncId, &Function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        assert_eq!(BlockId(3).index(), 3);
        assert_eq!(InstId(7).index(), 7);
        assert_eq!(FuncId(1).index(), 1);
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(InstId(7).to_string(), "%7");
    }

    #[test]
    fn constants_expose_type_and_payload() {
        assert_eq!(Constant::Int(5).ty(), Type::I64);
        assert_eq!(Constant::Float(1.5).ty(), Type::F64);
        assert_eq!(Constant::Ptr(64).ty(), Type::Ptr);
        assert_eq!(Constant::Int(5).as_int(), 5);
        assert_eq!(Constant::Float(1.5).as_float(), 1.5);
    }

    #[test]
    #[should_panic(expected = "not an integer")]
    fn constant_as_int_panics_on_float() {
        Constant::Float(0.0).as_int();
    }

    #[test]
    fn value_shorthands() {
        assert_eq!(Value::int(3).as_const(), Some(Constant::Int(3)));
        assert_eq!(Value::float(2.0).as_const(), Some(Constant::Float(2.0)));
        assert_eq!(Value::ptr(8).as_const(), Some(Constant::Ptr(8)));
        assert_eq!(Value::Inst(InstId(4)).as_inst(), Some(InstId(4)));
        assert_eq!(Value::Arg(0).as_inst(), None);
        assert_eq!(Value::Arg(0).as_const(), None);
    }

    #[test]
    fn function_block_and_inst_arena() {
        let mut f = Function::new("f", &[Type::I64], None);
        assert_eq!(f.entry(), BlockId(0));
        let bb = f.add_block("next");
        assert_eq!(bb, BlockId(1));
        assert_eq!(f.num_blocks(), 2);
        let id = f.push_inst(
            bb,
            Inst::binary(Op::Add, Type::I64, Value::Arg(0), Value::int(1)),
        );
        assert_eq!(f.block(bb).insts, vec![id]);
        assert_eq!(f.value_type(Value::Inst(id)), Type::I64);
        assert_eq!(f.value_type(Value::Arg(0)), Type::I64);
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new("m");
        let a = m.push(Function::new("a", &[], None));
        let b = m.push(Function::new("b", &[], None));
        assert_eq!(m.find("a"), Some(a));
        assert_eq!(m.find("b"), Some(b));
        assert_eq!(m.find("c"), None);
        assert_eq!(m.iter().count(), 2);
    }
}
