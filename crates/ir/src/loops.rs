//! Natural-loop detection from back edges.

use std::collections::BTreeSet;

use crate::cfg::{Cfg, Edge};
use crate::dom::DomTree;
use crate::module::BlockId;

/// A natural loop: the header plus every block that can reach the back-edge
/// source without passing through the header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge, dominates the body).
    pub header: BlockId,
    /// Sources of back edges into `header` (the latch blocks).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
}

impl Loop {
    /// Whether `bb` belongs to this loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.blocks.contains(&bb)
    }
}

/// All natural loops of a function, merged per header.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// Loops sorted by header id. Back edges whose target does not dominate
    /// the source (irreducible flow) are skipped.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detect natural loops in `cfg` using `dom`.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let mut per_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for Edge { from, to } in cfg.back_edges() {
            if !dom.dominates(to, from) {
                continue; // irreducible; not a natural loop
            }
            match per_header.iter_mut().find(|(h, _)| *h == to) {
                Some((_, latches)) => latches.push(from),
                None => per_header.push((to, vec![from])),
            }
        }
        let mut loops = Vec::new();
        for (header, latches) in per_header {
            let mut blocks = BTreeSet::new();
            blocks.insert(header);
            let mut stack = latches.clone();
            while let Some(bb) = stack.pop() {
                if blocks.insert(bb) {
                    for &p in cfg.preds(bb) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                blocks,
            });
        }
        loops.sort_by_key(|l| l.header);
        LoopForest { loops }
    }

    /// The innermost loop containing `bb` (the loop with the fewest blocks).
    pub fn innermost_containing(&self, bb: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(bb))
            .min_by_key(|l| l.blocks.len())
    }

    /// Loops that contain no other loop's header (the innermost loops).
    pub fn innermost(&self) -> Vec<&Loop> {
        self.loops
            .iter()
            .filter(|l| {
                !self
                    .loops
                    .iter()
                    .any(|o| o.header != l.header && l.contains(o.header))
            })
            .collect()
    }

    /// Number of detected loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function is loop-free.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{Function, Type, Value};

    fn nested_loops() -> Function {
        // entry -> outer_head -> inner_head -> inner_body -> inner_head
        //                   \<------------------ outer_latch <-/ (inner exit)
        // outer_head -> exit
        let mut b = FunctionBuilder::new("f", &[Type::I64], None);
        let entry = b.entry();
        let oh = b.block("outer_head");
        let ih = b.block("inner_head");
        let ib = b.block("inner_body");
        let ol = b.block("outer_latch");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let c0 = b.icmp_slt(b.arg(0), Value::int(100));
        b.cond_br(c0, ih, exit);
        b.switch_to(ih);
        let c1 = b.icmp_slt(b.arg(0), Value::int(10));
        b.cond_br(c1, ib, ol);
        b.switch_to(ib);
        b.br(ih);
        b.switch_to(ol);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested_loops();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        assert_eq!(forest.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == BlockId(2)).unwrap();
        assert!(outer.blocks.len() > inner.blocks.len());
        assert!(outer.contains(BlockId(2)));
        assert!(inner.contains(BlockId(3)));
        assert!(!inner.contains(BlockId(4)));
        // innermost() yields only the inner loop
        let innermost = forest.innermost();
        assert_eq!(innermost.len(), 1);
        assert_eq!(innermost[0].header, BlockId(2));
        // innermost_containing the inner body is the inner loop
        assert_eq!(
            forest.innermost_containing(BlockId(3)).unwrap().header,
            BlockId(2)
        );
        assert_eq!(
            forest.innermost_containing(BlockId(4)).unwrap().header,
            BlockId(1)
        );
    }

    #[test]
    fn loop_free_function() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let forest = LoopForest::new(&cfg, &DomTree::new(&cfg));
        assert!(forest.is_empty());
        assert!(forest.innermost_containing(BlockId(0)).is_none());
    }
}
