//! Control-flow graph views: successors, predecessors, orderings, edges.

use crate::module::{BlockId, Function};
use crate::Terminator;

/// A directed CFG edge between two blocks of the same function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
}

impl Edge {
    /// Construct an edge.
    pub fn new(from: BlockId, to: BlockId) -> Edge {
        Edge { from, to }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Precomputed CFG adjacency for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    /// Blocks whose terminator is `Ret`.
    exits: Vec<BlockId>,
}

impl Cfg {
    /// Build the adjacency lists for `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for bb in func.block_ids() {
            let ss = func.block(bb).term.successors();
            if matches!(func.block(bb).term, Terminator::Ret(_)) {
                exits.push(bb);
            }
            for s in &ss {
                preds[s.index()].push(bb);
            }
            succs[bb.index()] = ss;
        }
        Cfg {
            succs,
            preds,
            exits,
        }
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG is empty (never true for a well-formed function).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `bb` in branch order.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.index()]
    }

    /// Predecessors of `bb` (in block-id discovery order).
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.index()]
    }

    /// Blocks terminated by `Ret`.
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// All edges of the CFG.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (i, ss) in self.succs.iter().enumerate() {
            for s in ss {
                out.push(Edge::new(BlockId(i as u32), *s));
            }
        }
        out
    }

    /// Blocks reachable from the entry, as a boolean vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![BlockId(0)];
        seen[0] = true;
        while let Some(bb) = stack.pop() {
            for s in self.succs(bb) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(*s);
                }
            }
        }
        seen
    }

    /// Reverse post-order of the reachable blocks starting at the entry.
    ///
    /// This is a topological order when the graph is acyclic (e.g. the
    /// Ball-Larus DAG after back-edge removal).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut post = Vec::with_capacity(self.len());
        let mut state = vec![0u8; self.len()]; // 0 unvisited, 1 open, 2 done
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some((bb, i)) = stack.pop() {
            if i < self.succs(bb).len() {
                stack.push((bb, i + 1));
                let s = self.succs(bb)[i];
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[bb.index()] = 2;
                post.push(bb);
            }
        }
        post.reverse();
        post
    }

    /// Back edges with respect to a DFS from the entry: edges `u -> v` where
    /// `v` is an ancestor of `u` on the DFS stack. For reducible CFGs these
    /// are exactly the natural-loop back edges.
    pub fn back_edges(&self) -> Vec<Edge> {
        let mut color = vec![0u8; self.len()]; // 0 white, 1 grey, 2 black
        let mut back = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        color[0] = 1;
        while let Some((bb, i)) = stack.pop() {
            if i < self.succs(bb).len() {
                stack.push((bb, i + 1));
                let s = self.succs(bb)[i];
                match color[s.index()] {
                    0 => {
                        color[s.index()] = 1;
                        stack.push((s, 0));
                    }
                    1 => back.push(Edge::new(bb, s)),
                    _ => {}
                }
            } else {
                color[bb.index()] = 2;
            }
        }
        back.sort();
        back.dedup();
        back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{Type, Value};

    /// Diamond with a loop: entry -> head; head -> (a|b); a,b -> latch;
    /// latch -> head (back edge) | exit.
    fn looped_diamond() -> Function {
        let mut b = FunctionBuilder::new("f", &[Type::I64], None);
        let entry = b.entry();
        let head = b.block("head");
        let a = b.block("a");
        let bb = b.block("b");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(head);
        b.switch_to(head);
        let c = b.icmp_sgt(b.arg(0), Value::int(0));
        b.cond_br(c, a, bb);
        b.switch_to(a);
        b.br(latch);
        b.switch_to(bb);
        b.br(latch);
        b.switch_to(latch);
        let c2 = b.icmp_slt(b.arg(0), Value::int(10));
        b.cond_br(c2, head, exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    use crate::Function;

    #[test]
    fn adjacency_matches_terminators() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.len(), 6);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.preds(BlockId(4)), &[BlockId(2), BlockId(3)]);
        // head's preds: entry and latch
        let mut preds = cfg.preds(BlockId(1)).to_vec();
        preds.sort();
        assert_eq!(preds, vec![BlockId(0), BlockId(4)]);
        assert_eq!(cfg.exits(), &[BlockId(5)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 6);
        // entry precedes head precedes latch precedes exit
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId(0)) < pos(BlockId(1)));
        assert!(pos(BlockId(1)) < pos(BlockId(4)));
        assert!(pos(BlockId(4)) < pos(BlockId(5)));
    }

    #[test]
    fn back_edge_found() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.back_edges(), vec![Edge::new(BlockId(4), BlockId(1))]);
    }

    #[test]
    fn reachability_excludes_orphan_blocks() {
        let mut f = looped_diamond();
        f.add_block("orphan");
        let cfg = Cfg::new(&f);
        let reach = cfg.reachable();
        assert!(reach[..6].iter().all(|r| *r));
        assert!(!reach[6]);
    }

    #[test]
    fn edges_enumerates_every_edge_once() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        let edges = cfg.edges();
        assert_eq!(edges.len(), 7);
        assert!(edges.contains(&Edge::new(BlockId(4), BlockId(1))));
    }
}
