//! Textual printing of IR for debugging and examples.

use std::fmt::Write as _;

use crate::inst::{Op, Terminator};
use crate::module::{Function, Module};

/// Render `func` in a human-readable LLVM-like syntax.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let params = func
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let ret = func
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".to_string());
    let _ = writeln!(out, "fn @{}({params}) -> {ret} {{", func.name);
    for bb in func.block_ids() {
        let block = func.block(bb);
        let _ = writeln!(out, "{bb}: ; {}", block.name);
        for &iid in &block.insts {
            let inst = func.inst(iid);
            let args = inst
                .args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            match inst.op {
                Op::Phi => {
                    let inc = inst
                        .args
                        .iter()
                        .zip(&inst.phi_blocks)
                        .map(|(v, b)| format!("[{v}, {b}]"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = writeln!(out, "  {iid} = phi {} {inc}", inst.ty);
                }
                Op::ICmp(p) | Op::FCmp(p) => {
                    let _ = writeln!(out, "  {iid} = {} {p} {args}", inst.op.mnemonic());
                }
                Op::Gep => {
                    let _ = writeln!(out, "  {iid} = gep {args}, scale {}", inst.imm);
                }
                Op::Store => {
                    let _ = writeln!(out, "  store {args}");
                }
                Op::Call(callee) => {
                    let _ = writeln!(out, "  {iid} = call @f{}({args})", callee.0);
                }
                _ => {
                    let _ = writeln!(out, "  {iid} = {} {} {args}", inst.op.mnemonic(), inst.ty);
                }
            }
        }
        match &block.term {
            Terminator::Br(t) => {
                let _ = writeln!(out, "  br {t}");
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(out, "  br {cond}, {then_bb}, {else_bb}");
            }
            Terminator::Ret(Some(v)) => {
                let _ = writeln!(out, "  ret {v}");
            }
            Terminator::Ret(None) => {
                let _ = writeln!(out, "  ret void");
            }
            Terminator::Unreachable => {
                let _ = writeln!(out, "  unreachable");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render every function of `module`.
pub fn module_to_string(module: &Module) -> String {
    let mut out = format!("; module {}\n", module.name);
    for (_, f) in module.iter() {
        out.push_str(&function_to_string(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{Type, Value};

    #[test]
    fn printed_ir_mentions_every_construct() {
        let mut b = FunctionBuilder::new("show", &[Type::I64, Type::Ptr], Some(Type::I64));
        let entry = b.entry();
        let t = b.block("taken");
        let e = b.block("fall");
        let m = b.block("merge");
        b.switch_to(entry);
        let addr = b.gep(b.arg(1), b.arg(0), 8);
        let v = b.load(Type::I64, addr);
        let c = b.icmp_ne(v, Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.add(v, Value::int(1));
        b.store(a, addr);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64, &[(t, a), (e, Value::int(0))]);
        b.ret(Some(p));
        let f = b.finish();
        let s = function_to_string(&f);
        for needle in [
            "fn @show", "gep", "load", "icmp ne", "store", "phi", "br %", "ret",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
        let mut module = crate::Module::new("m");
        module.push(f);
        assert!(module_to_string(&module).contains("; module m"));
    }
}
