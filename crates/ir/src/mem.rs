//! Paged sparse memory.
//!
//! The interpreter's byte-addressable memory used to be a flat
//! `HashMap<u64, u64>` — one hash probe per 8-byte word on every load and
//! store, and O(touched words) hashing for every snapshot diff. This module
//! replaces it with a classic paged layout:
//!
//! * memory is split into **4 KiB pages** of 512 aligned 8-byte words;
//! * pages in the **dense window** (the first [`DENSE_PAGES`] pages, 16 MiB
//!   of address space — where every synthetic workload lives) are reached
//!   through a plain vector indexed by page number, no hashing at all;
//! * pages above the window sit in a hash map keyed by page number with a
//!   fast multiplicative hasher ([`FxHasher64`]) — one cheap page-number
//!   hash per access instead of one SipHash per *word*;
//! * snapshot/diff/equality work **page-granularly**: untouched pages
//!   compare by absence, touched pages compare with `[u64; 512]` slice
//!   equality (a memcmp), and only differing pages are walked word-by-word.
//!
//! Architecturally, memory is an infinite array of zero words: a missing
//! page reads as zero and a page full of zeros is semantically identical to
//! a missing page. All comparisons ([`Memory::diff`], [`Memory::same_as`])
//! respect that equivalence, so "wrote 0 to a fresh cell" is not a delta.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::module::Type;

use super::interp::Val;

/// log2 of the page size in bytes (4 KiB pages).
const PAGE_SHIFT: u32 = 12;
/// 8-byte words per page.
const PAGE_WORDS: usize = 1 << (PAGE_SHIFT - 3);
/// Pages reachable through the dense (vector-indexed) window. 4096 pages
/// = the first 16 MiB of address space, which covers every workload's
/// data/threshold/output arrays without a single hash.
const DENSE_PAGES: u64 = 4096;

/// One 4 KiB page of 512 aligned words.
type Page = Box<[u64; PAGE_WORDS]>;

fn new_page() -> Page {
    Box::new([0u64; PAGE_WORDS])
}

/// A fast multiplicative hasher for page numbers (FxHash-style). Page
/// numbers are small sequential integers; SipHash's DoS resistance buys
/// nothing here and costs ~3x the latency.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Golden-ratio multiplicative mix (Fibonacci hashing).
        self.hash = (self.hash ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageIndex = HashMap<u64, Page, BuildHasherDefault<FxHasher64>>;

/// Sparse byte-addressable memory with 8-byte cells, stored in 4 KiB pages.
///
/// Addresses are truncated to 8-byte alignment; uninitialised cells read as
/// zero. This is sufficient for the synthetic workloads, which operate on
/// 8-byte integer/float arrays.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    /// Pages `0..DENSE_PAGES`, indexed directly by page number.
    dense: Vec<Option<Page>>,
    /// Pages at or above the dense window, keyed by page number.
    sparse: PageIndex,
    /// Number of allocated pages (dense + sparse). Maintained incrementally
    /// at the two page-allocation sites so the resource governor's cap
    /// check costs nothing on stores to resident pages.
    resident: usize,
}

/// A capped store was refused because it would allocate a page beyond the
/// governor's limit. See [`Memory::store_capped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapExceeded;

#[inline]
fn page_no(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

#[inline]
fn word_ix(addr: u64) -> usize {
    ((addr >> 3) as usize) & (PAGE_WORDS - 1)
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Raw bits of the word containing `addr`, or 0 when the page or word
    /// was never written.
    #[inline]
    fn word(&self, addr: u64) -> u64 {
        let pn = page_no(addr);
        let page = if pn < DENSE_PAGES {
            match self.dense.get(pn as usize) {
                Some(Some(p)) => p,
                _ => return 0,
            }
        } else {
            match self.sparse.get(&pn) {
                Some(p) => p,
                None => return 0,
            }
        };
        page[word_ix(addr)]
    }

    /// Mutable access to the word containing `addr`, allocating its page on
    /// first touch. Refuses (without allocating) when the allocation would
    /// push the resident-page count past `max_pages`; the cap is only
    /// consulted on the allocation path, so stores to resident pages pay
    /// nothing for it.
    #[inline]
    fn word_mut_capped(&mut self, addr: u64, max_pages: usize) -> Option<&mut u64> {
        let pn = page_no(addr);
        let page = if pn < DENSE_PAGES {
            let ix = pn as usize;
            if self.dense.len() <= ix {
                self.dense.resize_with(ix + 1, || None);
            }
            match &mut self.dense[ix] {
                Some(p) => p,
                slot => {
                    if self.resident >= max_pages {
                        return None;
                    }
                    self.resident += 1;
                    slot.insert(new_page())
                }
            }
        } else {
            match self.sparse.entry(pn) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    if self.resident >= max_pages {
                        return None;
                    }
                    self.resident += 1;
                    e.insert(new_page())
                }
            }
        };
        Some(&mut page[word_ix(addr)])
    }

    /// Mutable access to the word containing `addr`, allocating its page on
    /// first touch.
    #[inline]
    fn word_mut(&mut self, addr: u64) -> &mut u64 {
        match self.word_mut_capped(addr, usize::MAX) {
            Some(w) => w,
            None => unreachable!("usize::MAX page cap cannot be reached"),
        }
    }

    /// Read the 8-byte cell containing `addr`, typed as `ty`.
    #[inline]
    pub fn load(&self, addr: u64, ty: Type) -> Val {
        Val::from_bits(self.word(addr), ty)
    }

    /// Write `val` to the 8-byte cell containing `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, val: Val) {
        *self.word_mut(addr) = val.to_bits();
    }

    /// Write `val` to the 8-byte cell containing `addr`, refusing (and
    /// leaving memory untouched) when the store would allocate a page past
    /// `max_pages` resident pages. Both execution engines route stores
    /// through this when a memory cap is configured, so an out-of-memory
    /// condition is a typed error, never a panic or an unbounded
    /// allocation.
    ///
    /// # Errors
    /// Returns [`CapExceeded`] when a fresh page would exceed the cap.
    #[inline]
    pub fn store_capped(
        &mut self,
        addr: u64,
        val: Val,
        max_pages: usize,
    ) -> Result<(), CapExceeded> {
        match self.word_mut_capped(addr, max_pages) {
            Some(w) => {
                *w = val.to_bits();
                Ok(())
            }
            None => Err(CapExceeded),
        }
    }

    /// Number of allocated pages (dense + sparse), i.e. the quantity the
    /// governor's page cap is measured against. A page allocated by storing
    /// zero still counts: residency tracks allocation, not content.
    #[inline]
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Raw bits of the cell containing `addr` (0 when untouched).
    #[inline]
    pub fn peek(&self, addr: u64) -> u64 {
        self.word(addr)
    }

    /// Number of nonzero cells. (The flat-map predecessor counted cells
    /// ever *stored to*; under the paged layout a stored zero is
    /// indistinguishable from an untouched cell — which matches the
    /// architectural model where absent cells read as zero.)
    pub fn footprint(&self) -> usize {
        self.pages()
            .map(|(_, p)| p.iter().filter(|w| **w != 0).count())
            .sum()
    }

    /// Fill consecutive 8-byte integer cells starting at `base`; returns
    /// the address one past the last cell written.
    pub fn fill_ints<I: IntoIterator<Item = i64>>(&mut self, base: u64, vals: I) -> u64 {
        let mut addr = base;
        for v in vals {
            self.store(addr, Val::Int(v));
            addr += 8;
        }
        addr
    }

    /// Fill consecutive 8-byte float cells starting at `base`; returns the
    /// address one past the last cell written.
    pub fn fill_floats<I: IntoIterator<Item = f64>>(&mut self, base: u64, vals: I) -> u64 {
        let mut addr = base;
        for v in vals {
            self.store(addr, Val::Float(v));
            addr += 8;
        }
        addr
    }

    /// All resident pages as `(page number, page)` in ascending page-number
    /// order (dense pages first; sparse page numbers are all larger).
    fn pages(&self) -> impl Iterator<Item = (u64, &Page)> {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i as u64, p)));
        let mut high: Vec<u64> = self.sparse.keys().copied().collect();
        high.sort_unstable();
        let sparse = high
            .into_iter()
            .map(|pn| (pn, self.sparse.get(&pn).expect("key from own index")));
        dense.chain(sparse)
    }

    /// Shared access to a resident page by number.
    fn page(&self, pn: u64) -> Option<&Page> {
        if pn < DENSE_PAGES {
            self.dense.get(pn as usize).and_then(|p| p.as_ref())
        } else {
            self.sparse.get(&pn)
        }
    }

    /// Page numbers resident in `self` or `other`, ascending, deduplicated.
    fn united_page_numbers(&self, other: &Memory) -> Vec<u64> {
        let mut pns: Vec<u64> = self
            .pages()
            .map(|(pn, _)| pn)
            .chain(other.pages().map(|(pn, _)| pn))
            .collect();
        pns.sort_unstable();
        pns.dedup();
        pns
    }

    /// An independent copy of the current memory image, for later
    /// comparison with [`Memory::diff`]. Differential verification
    /// snapshots memory before a speculative frame invocation and diffs
    /// after rollback: any delta is an atomicity violation.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot { mem: self.clone() }
    }

    /// Bit-exact deltas between `self` and a prior snapshot, sorted by
    /// address. The diff is page-granular: pages resident on both sides
    /// are compared with a single slice equality first (a memcmp) and only
    /// walked word-by-word when they differ; a page resident on one side
    /// only compares against the architectural zero page, so "wrote 0 to a
    /// fresh cell" is (correctly) not a divergence.
    pub fn diff(&self, base: &MemSnapshot) -> Vec<MemDelta> {
        const ZERO: [u64; PAGE_WORDS] = [0u64; PAGE_WORDS];
        let mut deltas = Vec::new();
        for pn in self.united_page_numbers(&base.mem) {
            let live = self.page(pn).map(|p| &**p).unwrap_or(&ZERO);
            let snap = base.mem.page(pn).map(|p| &**p).unwrap_or(&ZERO);
            if live == snap {
                continue;
            }
            let base_addr = pn << PAGE_SHIFT;
            for (i, (after, before)) in live.iter().zip(snap.iter()).enumerate() {
                if after != before {
                    deltas.push(MemDelta {
                        addr: base_addr + (i as u64) * 8,
                        before: *before,
                        after: *after,
                    });
                }
            }
        }
        deltas
    }

    /// True when the image is bit-identical to `base` (no deltas). Pages
    /// present on both sides short-circuit through slice equality; pages
    /// present on one side must be all-zero.
    pub fn same_as(&self, base: &MemSnapshot) -> bool {
        for pn in self.united_page_numbers(&base.mem) {
            match (self.page(pn), base.mem.page(pn)) {
                (Some(a), Some(b)) => {
                    if a != b {
                        return false;
                    }
                }
                (Some(p), None) | (None, Some(p)) => {
                    if p.iter().any(|w| *w != 0) {
                        return false;
                    }
                }
                (None, None) => unreachable!("page number came from one side"),
            }
        }
        true
    }
}

/// A frozen copy of a [`Memory`] image taken by [`Memory::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MemSnapshot {
    mem: Memory,
}

impl MemSnapshot {
    /// Rebuild a live [`Memory`] from the snapshot (used by the reference
    /// interpreter to replay an invocation against the pre-state).
    pub fn restore(&self) -> Memory {
        self.mem.clone()
    }
}

/// One 8-byte cell whose contents differ between a memory image and a
/// snapshot of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Cell-aligned byte address.
    pub addr: u64,
    /// Raw bits in the snapshot (0 when untouched).
    pub before: u64,
    /// Raw bits in the live image (0 when untouched).
    pub after: u64,
}

impl fmt::Display for MemDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {:#x}: {:#018x} -> {:#018x}",
            self.addr, self.before, self.after
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrips_ints_and_floats() {
        let mut mem = Memory::new();
        mem.store(64, Val::Int(-5));
        mem.store(72, Val::Float(2.5));
        assert_eq!(mem.load(64, Type::I64), Val::Int(-5));
        assert_eq!(mem.load(72, Type::F64), Val::Float(2.5));
        // unaligned access hits the containing cell
        assert_eq!(mem.load(67, Type::I64), Val::Int(-5));
        // untouched memory reads zero
        assert_eq!(mem.load(1024, Type::I64), Val::Int(0));
        assert_eq!(mem.footprint(), 2);
    }

    #[test]
    fn fill_helpers_advance_the_cursor() {
        let mut mem = Memory::new();
        let end = mem.fill_ints(0, [1, 2, 3]);
        assert_eq!(end, 24);
        assert_eq!(mem.load(8, Type::I64), Val::Int(2));
        let end = mem.fill_floats(end, [0.5]);
        assert_eq!(end, 32);
        assert_eq!(mem.load(24, Type::F64), Val::Float(0.5));
    }

    #[test]
    fn high_addresses_take_the_sparse_path() {
        let mut mem = Memory::new();
        let lo = 0x100; // dense window
        let hi = DENSE_PAGES << PAGE_SHIFT; // first sparse page
        let far = 0xDEAD_BEEF_0000; // deep sparse page
        mem.store(lo, Val::Int(1));
        mem.store(hi, Val::Int(2));
        mem.store(far, Val::Int(3));
        mem.store(far + 8, Val::Int(4));
        assert_eq!(mem.peek(lo), 1);
        assert_eq!(mem.peek(hi), 2);
        assert_eq!(mem.peek(far), 3);
        assert_eq!(mem.peek(far + 8), 4);
        assert_eq!(mem.peek(far + 16), 0);
        assert_eq!(mem.footprint(), 4);
    }

    #[test]
    fn page_boundaries_do_not_alias() {
        let mut mem = Memory::new();
        let last_in_page = (1 << PAGE_SHIFT) - 8;
        mem.store(last_in_page, Val::Int(10));
        mem.store(last_in_page + 8, Val::Int(20)); // first word of page 1
        assert_eq!(mem.peek(last_in_page), 10);
        assert_eq!(mem.peek(last_in_page + 8), 20);
    }

    #[test]
    fn snapshot_diff_reports_exact_deltas() {
        let mut mem = Memory::new();
        mem.store(0, Val::Int(1));
        mem.store(8, Val::Int(2));
        let snap = mem.snapshot();
        assert!(mem.same_as(&snap));

        mem.store(8, Val::Int(99)); // changed
        mem.store(16, Val::Int(3)); // fresh cell
        mem.store(24, Val::Int(0)); // fresh cell, but zero: no delta
        let deltas = mem.diff(&snap);
        assert_eq!(
            deltas,
            vec![
                MemDelta { addr: 8, before: 2, after: 99 },
                MemDelta { addr: 16, before: 0, after: 3 },
            ]
        );
        assert!(!mem.same_as(&snap));

        // Restoring the snapshot erases the divergence.
        let restored = snap.restore();
        assert!(restored.same_as(&snap));
        assert_eq!(restored.peek(8), 2);
    }

    #[test]
    fn snapshot_diff_detects_cells_reset_to_zero() {
        // A cell present in the snapshot but missing live compares against
        // zero — rollback that *removes* a cell instead of restoring its
        // value must still be flagged.
        let mut mem = Memory::new();
        mem.store(8, Val::Int(7));
        let snap = mem.snapshot();
        mem = Memory::new();
        let deltas = mem.diff(&snap);
        assert_eq!(deltas, vec![MemDelta { addr: 8, before: 7, after: 0 }]);
    }

    #[test]
    fn diff_spans_dense_and_sparse_pages_in_address_order() {
        let mut mem = Memory::new();
        let snap = mem.snapshot();
        let hi = (DENSE_PAGES + 7) << PAGE_SHIFT;
        mem.store(hi, Val::Int(5)); // sparse page
        mem.store(40, Val::Int(1)); // dense page
        let deltas = mem.diff(&snap);
        assert_eq!(
            deltas,
            vec![
                MemDelta { addr: 40, before: 0, after: 1 },
                MemDelta { addr: hi, before: 0, after: 5 },
            ]
        );
    }

    #[test]
    fn resident_pages_counts_allocations_not_content() {
        let mut mem = Memory::new();
        assert_eq!(mem.resident_pages(), 0);
        mem.store(0, Val::Int(0)); // zero store still allocates
        assert_eq!(mem.resident_pages(), 1);
        mem.store(8, Val::Int(1)); // same page
        assert_eq!(mem.resident_pages(), 1);
        mem.store(1 << PAGE_SHIFT, Val::Int(2)); // second dense page
        mem.store(DENSE_PAGES << PAGE_SHIFT, Val::Int(3)); // sparse page
        assert_eq!(mem.resident_pages(), 3);
        // loads never allocate
        assert_eq!(mem.load(0xDEAD_0000_0000, Type::I64), Val::Int(0));
        assert_eq!(mem.resident_pages(), 3);
    }

    #[test]
    fn store_capped_refuses_only_fresh_pages() {
        let mut mem = Memory::new();
        assert_eq!(mem.store_capped(0, Val::Int(1), 1), Ok(()));
        // resident page: cap already reached but no allocation needed
        assert_eq!(mem.store_capped(8, Val::Int(2), 1), Ok(()));
        // fresh dense page over the cap
        assert_eq!(
            mem.store_capped(1 << PAGE_SHIFT, Val::Int(3), 1),
            Err(CapExceeded)
        );
        // fresh sparse page over the cap
        assert_eq!(
            mem.store_capped(DENSE_PAGES << PAGE_SHIFT, Val::Int(3), 1),
            Err(CapExceeded)
        );
        // the refused stores left no trace
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(mem.peek(1 << PAGE_SHIFT), 0);
        // raising the cap lets the same store through
        assert_eq!(mem.store_capped(1 << PAGE_SHIFT, Val::Int(3), 2), Ok(()));
        assert_eq!(mem.peek(1 << PAGE_SHIFT), 3);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn accounting_survives_snapshot_restore_and_clone() {
        let mut mem = Memory::new();
        mem.store(0, Val::Int(1));
        mem.store(DENSE_PAGES << PAGE_SHIFT, Val::Int(2));
        let snap = mem.snapshot();
        mem.store(2 << PAGE_SHIFT, Val::Int(3));
        assert_eq!(mem.resident_pages(), 3);
        // restore rolls the counter back with the pages
        let restored = snap.restore();
        assert_eq!(restored.resident_pages(), 2);
        assert!(restored.same_as(&snap));
        // and a restored memory keeps accounting correctly
        let mut restored = restored;
        restored.store(3 << PAGE_SHIFT, Val::Int(4));
        assert_eq!(restored.resident_pages(), 3);
        assert_eq!(mem.clone().resident_pages(), 3);
    }

    #[test]
    fn zero_filled_page_equals_absent_page() {
        let mut a = Memory::new();
        a.store(0x2000, Val::Int(0)); // allocates a page of zeros
        let b = Memory::new();
        assert!(a.same_as(&b.snapshot()));
        assert!(b.same_as(&a.snapshot()));
        assert!(a.diff(&b.snapshot()).is_empty());
    }
}
