//! Malformed-input corpus for the textual IR parser.
//!
//! Every program here is broken in a different way; the parser must
//! reject each with a typed [`needle_ir::parse::ParseError`] — never a
//! panic, hang, or unbounded allocation. The corpus covers the shapes
//! the issue tracker has seen: truncated bodies, undefined values,
//! duplicate labels and definitions, inverted delimiters, runaway
//! block ids, and deeply nested garbage.

use needle_ir::parse::{parse_function, parse_module};

/// (name, program, substring the error message must contain).
const CORPUS: &[(&str, &str, &str)] = &[
    ("empty input", "", "empty input"),
    ("whitespace only", "   \n\t\n  ", "empty input"),
    ("no fn header", "bb0:\n  ret void\n}", "expected `fn @name"),
    ("header missing open paren", "fn @f -> i64 {\n}", "missing `(`"),
    ("header missing close paren", "fn @f(i64 %arg0 -> i64 {\n}", "missing `)`"),
    (
        "header close before open",
        "fn @f)i64 %arg0( -> i64 {\nbb0: ; e\n  ret 0\n}",
        "precedes",
    ),
    ("unknown param type", "fn @f(i37 %arg0) -> i64 {\n}", "unknown type"),
    ("unknown return type", "fn @f() -> quux {\n}", "unknown type"),
    (
        "instruction outside block",
        "fn @f() -> i64 {\n  %0 = add i64 1, 2\n  ret %0\n}",
        "outside a block",
    ),
    (
        "unknown opcode",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = frobnicate i64 1, 2\n  ret %0\n}",
        "frobnicate",
    ),
    (
        "use of undefined value",
        "fn @f() -> i64 {\nbb0: ; e\n  ret %9\n}",
        "undefined",
    ),
    (
        "argument out of range",
        "fn @f(i64 %arg0) -> i64 {\nbb0: ; e\n  %0 = add i64 %arg3, 1\n  ret %0\n}",
        "out of range",
    ),
    (
        "redefinition of a value",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = add i64 1, 2\n  %0 = add i64 3, 4\n  ret %0\n}",
        "redefinition",
    ),
    (
        "duplicate label",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = add i64 1, 2\nbb0: ; again\n  ret %0\n}",
        "duplicate label",
    ),
    (
        "runaway block id",
        "fn @f() -> i64 {\nbb999999999: ; boom\n  ret 0\n}",
        "exceeds limit",
    ),
    (
        "branch to undefined block",
        "fn @f() -> i64 {\nbb0: ; e\n  br bb7\n}",
        "undefined block",
    ),
    (
        "cond branch to undefined block",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = icmp eq 1, 1\n  br %0, bb0, bb42\n}",
        "undefined block",
    ),
    (
        "phi incoming from undefined block",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = phi i64 [ 1, bb9 ]\n  ret %0\n}",
        "undefined block",
    ),
    ("malformed br", "fn @f() -> i64 {\nbb0: ; e\n  br bb0, bb0\n}", "malformed br"),
    (
        "malformed store",
        "fn @f() -> void {\nbb0: ; e\n  store 1\n  ret void\n}",
        "malformed store",
    ),
    (
        "malformed gep",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = gep @0x40\n  ret 0\n}",
        "malformed gep",
    ),
    (
        "bad gep scale",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = gep @0x40, 1, scale lots\n  ret 0\n}",
        "bad gep scale",
    ),
    (
        "call with no parens",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = call @f0\n  ret %0\n}",
        "malformed call",
    ),
    (
        // Pre-hardening this sliced `rest[open+1..rfind(')')]` with the
        // bounds inverted and panicked; the stray `)` now lands in the
        // callee token and errors there.
        "call close before open",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = call @f0)1(\n  ret %0\n}",
        "bad callee",
    ),
    (
        "bad callee",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = call @goblin(1)\n  ret %0\n}",
        "bad callee",
    ),
    (
        "unknown compare predicate",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = icmp approx 1, 2\n  ret 0\n}",
        "unknown predicate",
    ),
    (
        "malformed phi incoming",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = phi i64 [ 1 bb0 ]\n  ret %0\n}",
        "malformed phi",
    ),
    (
        // The nested brackets survive incoming-splitting and die as an
        // unparseable value token.
        "deeply nested phi garbage",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = phi i64 [[[[[[[[[[1, bb0]]]]]]]]]]\n  ret %0\n}",
        "bad constant",
    ),
    (
        "bad block token",
        "fn @f() -> i64 {\nbb0: ; e\n  br banana\n}",
        "bad block",
    ),
    (
        "bad float constant",
        "fn @f() -> f64 {\nbb0: ; e\n  %0 = fadd f64 1.5, 2.x5\n  ret %0\n}",
        "bad float",
    ),
    (
        "bad integer constant",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = add i64 12monkeys, 1\n  ret %0\n}",
        "bad constant",
    ),
    (
        "bad pointer literal",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = load i64 @0xGG\n  ret %0\n}",
        "bad pointer",
    ),
    (
        "bad lhs",
        "fn @f() -> i64 {\nbb0: ; e\n  %%x = add i64 1, 2\n  ret 0\n}",
        "bad lhs",
    ),
    (
        "truncated body mid-instruction",
        "fn @f() -> i64 {\nbb0: ; e\n  %0 = add",
        "unknown type",
    ),
];

#[test]
fn malformed_corpus_errors_and_never_panics() {
    for (name, text, needle) in CORPUS {
        let r = std::panic::catch_unwind(|| parse_function(text));
        let r = r.unwrap_or_else(|_| panic!("case {name:?} PANICKED the parser"));
        let e = r.unwrap_err_or(name);
        assert!(
            e.message.contains(needle),
            "case {name:?}: message {:?} does not mention {needle:?}",
            e.message
        );
        // Line numbers must point inside the program (0 only for the
        // empty-input cases).
        let num_lines = text.lines().count();
        assert!(
            e.line <= num_lines,
            "case {name:?}: line {} out of range (program has {num_lines} lines)",
            e.line
        );
    }
}

trait UnwrapErrOr<T, E> {
    fn unwrap_err_or(self, name: &str) -> E;
}

impl<T: std::fmt::Debug, E> UnwrapErrOr<T, E> for Result<T, E> {
    fn unwrap_err_or(self, name: &str) -> E {
        match self {
            Ok(v) => panic!("case {name:?} unexpectedly parsed: {v:?}"),
            Err(e) => e,
        }
    }
}

#[test]
fn error_columns_point_at_the_offending_token() {
    let text = "fn @f() -> i64 {\nbb0: ; e\n  %0 = add i64 banana, 1\n  ret %0\n}";
    let e = parse_function(text).unwrap_err();
    assert_eq!(e.line, 3);
    let line3 = text.lines().nth(2).unwrap();
    assert_eq!(e.col, line3.find("banana").unwrap() + 1);
    assert!(e.to_string().starts_with("line 3:"), "{e}");
}

#[test]
fn parse_module_survives_the_corpus_too() {
    // parse_module routes through parse_function per chunk; feed it a
    // module whose second function is broken and check the error comes
    // back typed instead of panicking.
    let text = "\
; module twofer
fn @good() -> i64 {
bb0: ; e
  ret 1
}
fn @bad() -> i64 {
bb0: ; e
  ret %7
}
";
    let e = parse_module(text).unwrap_err();
    assert!(e.message.contains("undefined"), "{e}");
}

#[test]
fn runaway_block_id_does_not_allocate() {
    // Must fail fast — before this assert, a pre-hardening parser would
    // have tried to materialize a billion filler blocks.
    let t0 = std::time::Instant::now();
    let e = parse_function("fn @f() -> i64 {\nbb4000000000: ; boom\n  ret 0\n}").unwrap_err();
    assert!(e.message.contains("exceeds limit"), "{e}");
    assert!(t0.elapsed() < std::time::Duration::from_secs(5));
}
