//! Interpreter semantics corner cases and sink-event contracts.

use needle_ir::builder::FunctionBuilder;
use needle_ir::interp::{ExecError, Interp, Memory, NullSink, TraceSink, Val};
use needle_ir::{BlockId, CmpOp, Constant, FuncId, InstId, Module, Type, Value};

#[test]
fn wrapping_arithmetic_matches_two_complement() {
    let mut fb = FunctionBuilder::new("w", &[Type::I64, Type::I64], Some(Type::I64));
    let s = fb.add(fb.arg(0), fb.arg(1));
    fb.ret(Some(s));
    let mut m = Module::new("t");
    let f = m.push(fb.finish());
    let mut mem = Memory::new();
    let r = Interp::new(&m)
        .run(
            f,
            &[Constant::Int(i64::MAX), Constant::Int(1)],
            &mut mem,
            &mut NullSink,
        )
        .unwrap();
    assert_eq!(r.unwrap().as_int(), i64::MIN);
}

#[test]
fn shift_amounts_are_masked_to_six_bits() {
    let mut fb = FunctionBuilder::new("s", &[Type::I64], Some(Type::I64));
    let a = fb.shl(Value::int(1), fb.arg(0));
    fb.ret(Some(a));
    let mut m = Module::new("t");
    let f = m.push(fb.finish());
    let run = |x: i64| {
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(f, &[Constant::Int(x)], &mut mem, &mut NullSink)
            .unwrap()
            .unwrap()
            .as_int()
    };
    assert_eq!(run(3), 8);
    assert_eq!(run(64), 1); // 64 & 63 == 0
    assert_eq!(run(67), 8); // 67 & 63 == 3
}

#[test]
fn float_compare_handles_nan_without_panicking() {
    let mut fb = FunctionBuilder::new("n", &[Type::F64], Some(Type::I64));
    let nan = fb.fdiv(Value::float(0.0), Value::float(0.0)); // our fdiv: 0/0 = 0
    let c = fb.fcmp(CmpOp::Lt, nan, fb.arg(0));
    fb.ret(Some(c));
    let mut m = Module::new("t");
    let f = m.push(fb.finish());
    let mut mem = Memory::new();
    let r = Interp::new(&m)
        .run(f, &[Constant::Float(1.0)], &mut mem, &mut NullSink)
        .unwrap();
    assert_eq!(r.unwrap().as_int(), 1); // 0.0 < 1.0
}

#[test]
fn call_depth_limit_triggers_on_mutual_recursion() {
    // f0 calls f1, f1 calls f0.
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("f0", &[], Some(Type::I64));
    let r = fb.call(FuncId(1), Type::I64, &[]);
    fb.ret(Some(r));
    m.push(fb.finish());
    let mut fb = FunctionBuilder::new("f1", &[], Some(Type::I64));
    let r = fb.call(FuncId(0), Type::I64, &[]);
    fb.ret(Some(r));
    m.push(fb.finish());
    let mut mem = Memory::new();
    let err = Interp::new(&m)
        .run(FuncId(0), &[], &mut mem, &mut NullSink)
        .unwrap_err();
    assert!(matches!(err, ExecError::CallDepth(_)), "{err:?}");
}

#[test]
fn reached_unreachable_is_reported_with_location() {
    let mut fb = FunctionBuilder::new("u", &[], None);
    let b = fb.block("dead_end");
    fb.br(b);
    // b keeps the placeholder Unreachable terminator.
    let mut m = Module::new("t");
    let f = m.push(fb.finish());
    let mut mem = Memory::new();
    let err = Interp::new(&m)
        .run(f, &[], &mut mem, &mut NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::ReachedUnreachable(f, BlockId(1)));
}

/// Sink-event contract: enter/exit nest like a stack; block events follow
/// edges; mem events land between their block's block event and the next.
#[test]
fn sink_event_stream_is_well_formed() {
    #[derive(Default)]
    struct Checker {
        depth: i64,
        max_depth: i64,
        last_block: Option<(FuncId, BlockId)>,
        violations: Vec<String>,
        mems: u64,
    }
    impl TraceSink for Checker {
        fn enter(&mut self, _f: FuncId) {
            self.depth += 1;
            self.max_depth = self.max_depth.max(self.depth);
            self.last_block = None;
        }
        fn exit(&mut self, _f: FuncId) {
            self.depth -= 1;
            if self.depth < 0 {
                self.violations.push("unbalanced exit".into());
            }
        }
        fn block(&mut self, f: FuncId, bb: BlockId) {
            self.last_block = Some((f, bb));
        }
        fn edge(&mut self, f: FuncId, from: BlockId, _to: BlockId) {
            if let Some((lf, lb)) = self.last_block {
                if lf == f && lb != from {
                    self.violations
                        .push(format!("edge from {from} but last block was {lb}"));
                }
            }
        }
        fn mem(&mut self, _f: FuncId, _i: InstId, _a: u64, _s: bool) {
            if self.last_block.is_none() {
                self.violations.push("mem before any block".into());
            }
            self.mems += 1;
        }
    }

    let w = needle_workloads::by_name("456.hmmer").unwrap();
    let mut sink = Checker::default();
    let mut mem = w.memory.clone();
    Interp::new(&w.module)
        .run(w.func, &w.args, &mut mem, &mut sink)
        .unwrap();
    assert_eq!(sink.depth, 0, "enter/exit balanced");
    assert!(sink.violations.is_empty(), "{:?}", sink.violations);
    assert!(sink.mems > 1000);
}

#[test]
fn memory_bitcast_roundtrip_preserves_floats() {
    let mut mem = Memory::new();
    for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE, 1e300] {
        mem.store(0, Val::Float(v));
        assert_eq!(mem.load(0, Type::F64), Val::Float(v));
        // Reading as int gives the raw bits.
        assert_eq!(mem.load(0, Type::I64), Val::Int(v.to_bits() as i64));
    }
}
