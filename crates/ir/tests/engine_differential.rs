//! Differential equivalence: the pre-decoded engine vs the reference
//! tree walker.
//!
//! Both engines sit behind the same `Interp` API and must be
//! indistinguishable: same results, same full trace-event streams, same
//! step counts, same `ExecError`s — including the exact cut point of
//! `StepLimit` under the engine's batched budget accounting, and identical
//! event prefixes on error paths.

use needle_ir::builder::FunctionBuilder;
use needle_ir::interp::{CancelToken, ExecError, Interp, Memory, TraceSink, Val};
use needle_ir::{BlockId, Constant, FuncId, InstId, Module, Type, Value};

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Enter(FuncId),
    Exit(FuncId),
    Block(FuncId, BlockId),
    Edge(FuncId, BlockId, BlockId),
    Mem(FuncId, InstId, u64, bool),
}

/// Records the complete event stream.
#[derive(Debug, Default)]
struct Rec(Vec<Ev>);

impl TraceSink for Rec {
    fn enter(&mut self, func: FuncId) {
        self.0.push(Ev::Enter(func));
    }
    fn exit(&mut self, func: FuncId) {
        self.0.push(Ev::Exit(func));
    }
    fn block(&mut self, func: FuncId, bb: BlockId) {
        self.0.push(Ev::Block(func, bb));
    }
    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.0.push(Ev::Edge(func, from, to));
    }
    fn mem(&mut self, func: FuncId, inst: InstId, addr: u64, is_store: bool) {
        self.0.push(Ev::Mem(func, inst, addr, is_store));
    }
}

/// Bit-exact comparison key for a run result (avoids `NaN != NaN`).
fn result_key(r: &Result<Option<Val>, ExecError>) -> Result<Option<(bool, u64)>, ExecError> {
    r.clone()
        .map(|o| o.map(|v| (matches!(v, Val::Float(_)), v.to_bits())))
}

/// Run `func` on both engines and assert full observable equivalence:
/// result, step count, event stream, and final memory image.
fn assert_equivalent(
    ctx: &str,
    module: &Module,
    func: FuncId,
    args: &[Constant],
    mem0: &Memory,
    max_steps: u64,
) {
    assert_equivalent_capped(ctx, module, func, args, mem0, max_steps, usize::MAX);
}

/// [`assert_equivalent`] with the memory governor armed: the resident-page
/// cap must produce the same `MemLimit` attribution, cut point, and event
/// prefix on both engines.
fn assert_equivalent_capped(
    ctx: &str,
    module: &Module,
    func: FuncId,
    args: &[Constant],
    mem0: &Memory,
    max_steps: u64,
    max_pages: usize,
) {
    let interp = Interp::new(module)
        .with_max_steps(max_steps)
        .with_max_pages(max_pages);
    assert_equivalent_interp(ctx, &interp, func, args, mem0, max_steps);
}

/// Core comparison against a caller-configured [`Interp`] (lets tests arm
/// cancellation tokens and intervals in addition to fuel/page budgets).
fn assert_equivalent_interp(
    ctx: &str,
    interp: &Interp,
    func: FuncId,
    args: &[Constant],
    mem0: &Memory,
    max_steps: u64,
) {
    let mut mem_fast = mem0.clone();
    let mut rec_fast = Rec::default();
    let r_fast = interp.run_with(func, args, &mut mem_fast, &mut rec_fast);
    let steps_fast = interp.steps();

    let mut mem_ref = mem0.clone();
    let mut rec_ref = Rec::default();
    let r_ref = interp.run_reference(func, args, &mut mem_ref, &mut rec_ref);
    let steps_ref = interp.steps();

    assert_eq!(
        result_key(&r_fast),
        result_key(&r_ref),
        "{ctx}: result mismatch (max_steps={max_steps})"
    );
    assert_eq!(
        steps_fast, steps_ref,
        "{ctx}: step count mismatch (max_steps={max_steps})"
    );
    assert_eq!(
        rec_fast.0.len(),
        rec_ref.0.len(),
        "{ctx}: event stream length mismatch (max_steps={max_steps})"
    );
    for (i, (a, b)) in rec_fast.0.iter().zip(rec_ref.0.iter()).enumerate() {
        assert_eq!(a, b, "{ctx}: event {i} diverges (max_steps={max_steps})");
    }
    assert!(
        mem_fast.same_as(&mem_ref.snapshot()),
        "{ctx}: final memory diverges (max_steps={max_steps}): {:?}",
        mem_fast.diff(&mem_ref.snapshot())
    );
}

#[test]
fn whole_workload_suite_is_equivalent() {
    for w in needle_workloads::all() {
        assert_equivalent(&w.name, &w.module, w.func, &w.args, &w.memory, 50_000_000);
    }
}

#[test]
fn reference_inputs_are_equivalent() {
    for name in ["164.gzip", "470.lbm", "186.crafty"] {
        let w = needle_workloads::reference_input(name).expect("known workload");
        let ctx = format!("{name} (ref input)");
        assert_equivalent(&ctx, &w.module, w.func, &w.args, &w.memory, 50_000_000);
    }
}

#[test]
fn step_limit_boundaries_are_exact() {
    // The engine batches budget accounting per block; the walker debits per
    // instruction. Every cut point — especially mid-block ones — must
    // produce the same error, the same step count and the same event
    // prefix. Probe a loop workload at exhaustive small limits and around
    // the exact completion count.
    let w = needle_workloads::by_name("164.gzip").expect("known workload");
    let interp = Interp::new(&w.module);
    let mut mem = w.memory.clone();
    interp
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("gzip completes");
    let full = interp.steps();
    assert!(full > 100, "workload long enough to probe");

    let mut limits: Vec<u64> = (0..40).collect();
    limits.extend([
        full / 3,
        full / 2,
        full - 2,
        full - 1,
        full,
        full + 1,
        full + 1000,
    ]);
    for limit in limits {
        assert_equivalent("164.gzip", &w.module, w.func, &w.args, &w.memory, limit);
    }
}

#[test]
fn step_limit_boundaries_through_fused_loads() {
    // 401.bzip2's body is dominated by `(i + salt) & mask` load/store
    // chains, which decode into multi-step superinstructions (AddAndI,
    // GepLoadAdd, GepLoadI/GepStore). An exhaustive sweep over the first
    // iterations lands cut points on every intra-fusion offset: after the
    // add but before the and, after the gep but before the load, after
    // the load but before the fold.
    let w = needle_workloads::by_name("401.bzip2").expect("known workload");
    for limit in 0..250 {
        assert_equivalent("401.bzip2", &w.module, w.func, &w.args, &w.memory, limit);
    }
}

#[test]
fn step_limit_boundaries_with_calls() {
    // Call-bearing blocks take the per-instruction accounting path; the
    // nested invocation consumes from the same budget. Probe around the
    // callee boundary.
    let w = needle_workloads::by_name("186.crafty").expect("workload with calls");
    let interp = Interp::new(&w.module);
    let mut mem = w.memory.clone();
    interp
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("crafty completes");
    let full = interp.steps();

    let mut limits: Vec<u64> = (0..60).collect();
    limits.extend([full / 2, full - 1, full, full + 1]);
    for limit in limits {
        assert_equivalent("186.crafty", &w.module, w.func, &w.args, &w.memory, limit);
    }
}

#[test]
fn runaway_loop_hits_identical_step_limit() {
    let w = needle_workloads::by_name("999.loop").expect("pathological workload");
    for limit in [0, 1, 7, 100, 10_000] {
        assert_equivalent("999.loop", &w.module, w.func, &w.args, &w.memory, limit);
    }
    let interp = Interp::new(&w.module).with_max_steps(1000);
    let mut mem = w.memory.clone();
    let err = interp
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::StepLimit(1000));
}

#[test]
fn unreachable_terminator_is_equivalent() {
    let mut b = FunctionBuilder::new("dead", &[], Some(Type::I64));
    let entry = b.entry();
    let dead = b.block("dead"); // keeps its default Unreachable terminator
    b.switch_to(entry);
    b.br(dead);
    let mut m = Module::new("t");
    let f = m.push(b.finish());
    assert_equivalent("unreachable", &m, f, &[], &Memory::new(), 1000);

    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    let err = interp
        .run(f, &[], &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::ReachedUnreachable(f, BlockId(1)));
}

#[test]
fn phi_missing_incoming_is_equivalent() {
    // join's φ only lists the `a` predecessor; arriving via `b` must fail
    // identically on both engines (error after the block event, before any
    // φ write).
    let mut fb = FunctionBuilder::new("badphi", &[Type::I64], Some(Type::I64));
    let entry = fb.entry();
    let a = fb.block("a");
    let b = fb.block("b");
    let join = fb.block("join");
    fb.switch_to(entry);
    let c = fb.icmp_sgt(fb.arg(0), Value::int(0));
    fb.cond_br(c, a, b);
    fb.switch_to(a);
    fb.br(join);
    fb.switch_to(b);
    fb.br(join);
    fb.switch_to(join);
    let p = fb.phi(Type::I64, &[(a, Value::int(1))]);
    fb.ret(Some(p));
    let mut m = Module::new("t");
    let f = m.push(fb.finish());

    // Via `a`: completes. Via `b`: PhiMissingIncoming at the φ.
    assert_equivalent("phi ok arm", &m, f, &[Constant::Int(1)], &Memory::new(), 1000);
    assert_equivalent("phi bad arm", &m, f, &[Constant::Int(-1)], &Memory::new(), 1000);

    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    let err = interp
        .run(f, &[Constant::Int(-1)], &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    let p_id = p.as_inst().unwrap();
    assert_eq!(err, ExecError::PhiMissingIncoming(f, p_id));
}

#[test]
fn entry_block_phi_is_equivalent() {
    // A φ in the entry block can never resolve (no predecessor).
    let mut fb = FunctionBuilder::new("entryphi", &[], Some(Type::I64));
    let entry = fb.entry();
    let other = fb.block("other");
    fb.switch_to(entry);
    let p = fb.phi(Type::I64, &[(other, Value::int(1))]);
    fb.ret(Some(p));
    fb.switch_to(other);
    fb.br(entry);
    let mut m = Module::new("t");
    let f = m.push(fb.finish());

    assert_equivalent("entry phi", &m, f, &[], &Memory::new(), 1000);
    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    let err = interp
        .run(f, &[], &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::PhiMissingIncoming(f, p.as_inst().unwrap()));
}

#[test]
fn call_depth_limit_is_equivalent() {
    // f() = f(): infinite recursion trips CallDepth before StepLimit.
    let mut m = Module::new("t");
    let placeholder = FunctionBuilder::new("rec", &[], Some(Type::I64)).finish();
    let f = m.push(placeholder);
    let mut fb = FunctionBuilder::new("rec", &[], Some(Type::I64));
    let v = fb.call(f, Type::I64, &[]);
    fb.ret(Some(v));
    *m.func_mut(f) = fb.finish();

    assert_equivalent("call depth", &m, f, &[], &Memory::new(), 50_000_000);
    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    let err = interp
        .run(f, &[], &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::CallDepth(64));
}

#[test]
fn undefined_body_read_is_equivalent() {
    // A body instruction reading a value whose definition never executed
    // (verifier escape): both engines report the *consuming* instruction.
    let mut fb = FunctionBuilder::new("undef", &[], Some(Type::I64));
    let entry = fb.entry();
    let other = fb.block("other");
    let exit = fb.block("exit");
    fb.switch_to(other); // never reached
    let x = fb.add(Value::int(1), Value::int(2));
    fb.br(exit);
    fb.switch_to(entry);
    let y = fb.add(x, Value::int(1)); // reads undefined x
    fb.ret(Some(y));
    fb.switch_to(exit);
    fb.ret(Some(Value::int(0)));
    let mut m = Module::new("t");
    let f = m.push(fb.finish());

    assert_equivalent("undefined body read", &m, f, &[], &Memory::new(), 1000);
    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    let err = interp
        .run(f, &[], &mut mem, &mut needle_ir::interp::NullSink)
        .unwrap_err();
    assert_eq!(err, ExecError::UndefinedValue(f, y.as_inst().unwrap()));
}

/// Build `store-heavy`: a loop writing `n` words to consecutive fresh
/// pages through a fused gep+store, returning the loop counter. The gep
/// scale of 4096 lands every iteration on a new page, so a cap of `k`
/// pages above the baseline trips on exactly the `k`-th store.
fn store_heavy_module() -> (Module, FuncId, Value) {
    let mut fb = FunctionBuilder::new("store_heavy", &[Type::I64], Some(Type::I64));
    let entry = fb.entry();
    let header = fb.block("header");
    let body = fb.block("body");
    let exit = fb.block("exit");
    fb.switch_to(entry);
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
    let c = fb.icmp_slt(i, fb.arg(0));
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let p = fb.gep(Value::ptr(0x9000_0000), i, 4096);
    let st = fb.store(i, p);
    let next = fb.add(i, Value::int(1));
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(Some(i));
    let mut func = fb.finish();
    let phi_id = i.as_inst().expect("phi is an instruction");
    func.inst_mut(phi_id).args.push(next);
    func.inst_mut(phi_id).phi_blocks.push(body);
    let mut m = Module::new("t");
    let f = m.push(func);
    (m, f, st)
}

#[test]
fn mem_cap_sweep_is_equivalent() {
    // Exhaustive governor boundary sweep: every cap from "nothing fits"
    // through "everything fits plus slack" must cut both engines at the
    // same store, with the same steps, events, and final memory.
    let (m, f, _) = store_heavy_module();
    let args = [Constant::Int(6)];
    let interp = Interp::new(&m);
    let mut mem = Memory::new();
    interp
        .run(f, &args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("uncapped run completes");
    let full = mem.resident_pages();
    assert!(full >= 6, "six distinct pages touched");
    for cap in 0..=full + 1 {
        assert_equivalent_capped("store-heavy", &m, f, &args, &Memory::new(), 10_000, cap);
    }
}

#[test]
fn mem_cap_mid_fusion_attributes_to_store() {
    // The engine fuses the body's gep+store into one GepStore
    // superinstruction. A cap violation lands mid-superinstruction — and
    // must still attribute to the *store* instruction id, exactly as the
    // walker does, with identical step counts.
    let (m, f, st) = store_heavy_module();
    let st_id = st.as_inst().expect("store is an instruction");
    let args = [Constant::Int(3)];
    for cap in [0usize, 1, 2] {
        let interp = Interp::new(&m).with_max_steps(10_000).with_max_pages(cap);
        let mut mem_fast = Memory::new();
        let r_fast = interp.run_with(f, &args, &mut mem_fast, &mut needle_ir::interp::NullSink);
        let steps_fast = interp.steps();
        let mut mem_ref = Memory::new();
        let r_ref = interp.run_reference(f, &args, &mut mem_ref, &mut needle_ir::interp::NullSink);
        let steps_ref = interp.steps();
        assert_eq!(
            r_fast,
            Err(ExecError::MemLimit(f, st_id)),
            "cap {cap}: engine must attribute the violation to the store"
        );
        assert_eq!(
            r_ref,
            Err(ExecError::MemLimit(f, st_id)),
            "cap {cap}: walker must attribute the violation to the store"
        );
        assert_eq!(steps_fast, steps_ref, "cap {cap}: step counts diverge");
        assert_eq!(mem_fast.resident_pages(), cap, "cap {cap}: engine residency");
        assert_eq!(mem_ref.resident_pages(), cap, "cap {cap}: walker residency");
    }
}

#[test]
fn step_and_mem_cap_interplay_is_equivalent() {
    // Fuel exhaustion and governor violation race each other: whichever
    // error wins, both engines must agree on the error, its attribution,
    // and the cut point. Sweep the full (limit, cap) grid of a run that
    // can hit either.
    let (m, f, _) = store_heavy_module();
    let args = [Constant::Int(4)];
    for limit in 0..30 {
        for cap in 0..6 {
            let ctx = format!("interplay limit={limit} cap={cap}");
            assert_equivalent_capped(&ctx, &m, f, &args, &Memory::new(), limit, cap);
        }
    }
}

#[test]
fn workload_under_mem_caps_is_equivalent() {
    // A real suite workload under governor caps around its true
    // footprint: 470.lbm is store-dense (float grid updates).
    let w = needle_workloads::by_name("470.lbm").expect("known workload");
    let interp = Interp::new(&w.module);
    let mut mem = w.memory.clone();
    interp
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("lbm completes");
    let full = mem.resident_pages();
    let base = w.memory.resident_pages();
    for cap in [0, 1, base, full.saturating_sub(1), full, full + 1] {
        assert_equivalent_capped(
            "470.lbm", &w.module, w.func, &w.args, &w.memory, 50_000_000, cap,
        );
    }
}

#[test]
fn cancel_points_sweep_through_fused_ops() {
    // A pre-cancelled token with check interval `k` lets exactly `k` steps
    // run, then fires before step k+1 — landing the cut point on every
    // intra-fusion offset of 401.bzip2's superinstruction-dense body, just
    // like the StepLimit sweep. Both engines must agree on the error
    // (including the Some/None instruction attribution), the step count,
    // the event prefix, and the final memory image.
    let w = needle_workloads::by_name("401.bzip2").expect("known workload");
    for k in 1..250u64 {
        let token = CancelToken::new();
        token.cancel();
        let interp = Interp::new(&w.module)
            .with_max_steps(50_000_000)
            .with_cancel(Some(token))
            .with_cancel_interval(k);
        let ctx = format!("401.bzip2 cancel interval={k}");
        assert_equivalent_interp(&ctx, &interp, w.func, &w.args, &w.memory, 50_000_000);

        let mut mem = w.memory.clone();
        let err = interp
            .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
            .unwrap_err();
        assert!(
            matches!(err, ExecError::Cancelled(..)),
            "{ctx}: expected Cancelled, got {err:?}"
        );
    }
}

#[test]
fn cancel_points_sweep_with_calls() {
    // Cancellation checkpoints inside nested invocations: the callee draws
    // from the same fuel, so the cut can land mid-callee. Both engines must
    // attribute it identically.
    let w = needle_workloads::by_name("186.crafty").expect("workload with calls");
    for k in 1..120u64 {
        let token = CancelToken::new();
        token.cancel();
        let interp = Interp::new(&w.module)
            .with_max_steps(50_000_000)
            .with_cancel(Some(token))
            .with_cancel_interval(k);
        let ctx = format!("186.crafty cancel interval={k}");
        assert_equivalent_interp(&ctx, &interp, w.func, &w.args, &w.memory, 50_000_000);
    }
}

#[test]
fn cancel_interval_beyond_run_length_completes() {
    // A run shorter than the check interval never observes the token: both
    // engines complete normally even though cancellation was requested.
    let w = needle_workloads::by_name("164.gzip").expect("known workload");
    let probe = Interp::new(&w.module);
    let mut mem = w.memory.clone();
    probe
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("gzip completes");
    let full = probe.steps();

    let token = CancelToken::new();
    token.cancel();
    let interp = Interp::new(&w.module)
        .with_cancel(Some(token))
        .with_cancel_interval(full + 1);
    assert_equivalent_interp(
        "164.gzip cancel beyond run",
        &interp,
        w.func,
        &w.args,
        &w.memory,
        50_000_000,
    );
    let mut mem = w.memory.clone();
    interp
        .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("interval beyond run length never trips");
}

#[test]
fn step_limit_wins_over_cancellation_on_the_same_step() {
    // When the fuel budget and the cancellation checkpoint land on the very
    // same step, StepLimit takes precedence — on both engines.
    let w = needle_workloads::by_name("999.loop").expect("pathological workload");
    for k in [1u64, 7, 64, 1000] {
        let token = CancelToken::new();
        token.cancel();
        let interp = Interp::new(&w.module)
            .with_max_steps(k)
            .with_cancel(Some(token))
            .with_cancel_interval(k);
        let ctx = format!("999.loop tie k={k}");
        assert_equivalent_interp(&ctx, &interp, w.func, &w.args, &w.memory, k);
        let mut mem = w.memory.clone();
        let err = interp
            .run(w.func, &w.args, &mut mem, &mut needle_ir::interp::NullSink)
            .unwrap_err();
        assert_eq!(err, ExecError::StepLimit(k), "{ctx}");
    }
}

#[test]
fn cancel_mid_fusion_attributes_to_constituent() {
    // store-heavy's body fuses gep+store into one GepStore. A cancel
    // checkpoint landing mid-superinstruction must attribute to the
    // constituent instruction about to run, identically on both engines,
    // and a checkpoint before a terminator must attribute `None`.
    let (m, f, _) = store_heavy_module();
    let args = [Constant::Int(5)];
    let probe = Interp::new(&m);
    let mut mem = Memory::new();
    probe
        .run(f, &args, &mut mem, &mut needle_ir::interp::NullSink)
        .expect("uncancelled run completes");
    let full = probe.steps();
    assert!(full > 10, "run long enough to probe");
    for k in 1..full {
        let token = CancelToken::new();
        token.cancel();
        let interp = Interp::new(&m)
            .with_max_steps(10_000)
            .with_cancel(Some(token))
            .with_cancel_interval(k);
        let ctx = format!("store-heavy cancel interval={k}");
        assert_equivalent_interp(&ctx, &interp, f, &args, &Memory::new(), 10_000);

        let mut mem_fast = Memory::new();
        let r_fast = interp.run_with(f, &args, &mut mem_fast, &mut needle_ir::interp::NullSink);
        let mut mem_ref = Memory::new();
        let r_ref = interp.run_reference(f, &args, &mut mem_ref, &mut needle_ir::interp::NullSink);
        match (&r_fast, &r_ref) {
            (Err(ExecError::Cancelled(fa, ia)), Err(ExecError::Cancelled(fb, ib))) => {
                assert_eq!((fa, ia), (fb, ib), "{ctx}: attribution diverges");
                assert_eq!(*fa, f, "{ctx}: wrong function");
            }
            other => panic!("{ctx}: expected Cancelled on both engines, got {other:?}"),
        }
    }
}

#[test]
fn profiled_runs_see_identical_streams() {
    // The same module run many times through one Interp (engine decoded
    // once, frames recycled) keeps producing streams identical to fresh
    // reference runs.
    let w = needle_workloads::by_name("458.sjeng").expect("known workload");
    let interp = Interp::new(&w.module);
    for _ in 0..3 {
        let mut mem = w.memory.clone();
        let mut rec = Rec::default();
        let r = interp.run_with(w.func, &w.args, &mut mem, &mut rec);
        let mut mem_ref = w.memory.clone();
        let mut rec_ref = Rec::default();
        let r_ref = interp.run_reference(w.func, &w.args, &mut mem_ref, &mut rec_ref);
        assert_eq!(result_key(&r), result_key(&r_ref));
        assert_eq!(rec.0, rec_ref.0);
    }
}
