//! `needle-cgra` — the coarse-grained reconfigurable array backend model.
//!
//! Reproduces the accelerator side of the paper's evaluation (§VI):
//!
//! * [`config`] — the Table V fabric: 16×8 function units, 16-cycle
//!   reconfiguration, cache-coherent memory ports into the shared L2, and
//!   the published dynamic energy parameters (12 pJ network switch+link,
//!   8 pJ INT op, 25 pJ FPU op, 5 pJ latch);
//! * [`sched`] — a resource-constrained dataflow list scheduler that maps a
//!   software frame onto the fabric and reports the invocation makespan;
//! * [`energy`] — per-invocation dynamic energy of a scheduled frame;
//! * [`sim`] — the invocation-level cost model: reconfiguration, live-in /
//!   live-out transfer over the L2, guard-failure rollback;
//! * [`area`] — the §VI HLS substitute: an ALM-count and power estimator
//!   for synthesized frames (Cyclone V-class device).

pub mod area;
pub mod config;
pub mod energy;
pub mod sched;
pub mod sim;

pub use area::{estimate_area, AreaEstimate};
pub use config::CgraConfig;
pub use energy::{frame_energy, FrameEnergy};
pub use sched::{schedule_frame, Schedule};
pub use sim::{CgraCost, InvocationKind};
