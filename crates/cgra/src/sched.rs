//! Resource-constrained dataflow scheduling of frames onto the fabric.

use needle_frames::{Frame, FrameOpKind};
use needle_ir::Op;

use crate::config::CgraConfig;

/// The schedule of one frame on the fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Invocation makespan in cycles (dataflow execution only; transfer and
    /// reconfiguration overheads are added by [`crate::sim`]).
    pub cycles: u64,
    /// Issue cycle of each op.
    pub start: Vec<u64>,
    /// Peak ops in flight in any single cycle.
    pub peak_parallelism: usize,
    /// Average FU occupancy over the makespan (0..=1).
    pub utilization: f64,
}

/// Whether an op belongs to the dedicated predicate network: 1-bit
/// and/or/xor logic routed combinationally alongside data (CGRAs implement
/// predication in the interconnect, not on function units).
pub fn is_pred_logic(op: &needle_frames::FrameOp) -> bool {
    matches!(op.ty, needle_ir::Type::I1)
        && matches!(
            op.kind,
            FrameOpKind::Compute(Op::And) | FrameOpKind::Compute(Op::Or) | FrameOpKind::Compute(Op::Xor)
        )
}

/// Latency of one frame op under `cfg`.
pub fn op_latency(cfg: &CgraConfig, kind: FrameOpKind) -> u64 {
    match kind {
        FrameOpKind::Load => cfg.load_latency,
        FrameOpKind::Store => cfg.store_latency,
        FrameOpKind::Guard { .. } => cfg.int_latency,
        FrameOpKind::Compute(op) => match op {
            Op::Div | Op::Rem => cfg.div_latency,
            Op::FDiv | Op::FSqrt => cfg.div_latency,
            o if o.is_float() => cfg.fp_latency,
            _ => cfg.int_latency,
        },
    }
}

/// List-schedule `frame` with the fabric's issue constraints: at most
/// [`CgraConfig::num_fus`] ops may *start* per cycle and at most
/// [`CgraConfig::mem_ports`] of them may be memory ops.
///
/// Ops become ready when all dataflow operands (including the predicate)
/// have completed; guards never gate anything (speculative execution).
pub fn schedule_frame(cfg: &CgraConfig, frame: &Frame) -> Schedule {
    let n = frame.ops.len();
    if n == 0 {
        return Schedule {
            cycles: 0,
            start: Vec::new(),
            peak_parallelism: 0,
            utilization: 0.0,
        };
    }
    let mut ready = vec![0u64; n]; // earliest issue by dataflow
    let mut finish = vec![0u64; n];
    let mut start = vec![0u64; n];
    // Per-cycle issue budgets, grown on demand.
    let mut fu_used: Vec<usize> = Vec::new();
    let mut mem_used: Vec<usize> = Vec::new();
    let budget = |v: &mut Vec<usize>, c: u64| -> usize {
        let c = c as usize;
        if v.len() <= c {
            v.resize(c + 1, 0);
        }
        v[c]
    };

    for (i, op) in frame.ops.iter().enumerate() {
        // Execution is fully speculative (§V): predicates gate only the
        // architectural effect of stores, so pure ops do not wait for their
        // block predicate — only data operands (and store predicates) are
        // scheduling dependences.
        let honors_pred = matches!(op.kind, FrameOpKind::Store);
        for a in op
            .args
            .iter()
            .chain(op.pred.iter().filter(|_| honors_pred))
        {
            if let Some(j) = a.as_op() {
                ready[i] = ready[i].max(finish[j]);
            }
        }
        if is_pred_logic(op) {
            // Combinational predicate network: no FU slot, no latency.
            start[i] = ready[i];
            finish[i] = ready[i];
            continue;
        }
        // Find the first cycle with FU (and memory-port) budget.
        let is_mem = matches!(op.kind, FrameOpKind::Load | FrameOpKind::Store);
        let mut c = ready[i];
        loop {
            let fu_ok = budget(&mut fu_used, c) < cfg.num_fus();
            let mem_ok = !is_mem || budget(&mut mem_used, c) < cfg.mem_ports;
            if fu_ok && mem_ok {
                break;
            }
            c += 1;
        }
        fu_used[c as usize] += 1;
        if is_mem {
            mem_used[c as usize] += 1;
        }
        start[i] = c;
        finish[i] = c + op_latency(cfg, op.kind);
    }

    let cycles = finish.iter().copied().max().unwrap_or(0);
    let peak = fu_used.iter().copied().max().unwrap_or(0);
    let utilization = if cycles == 0 {
        0.0
    } else {
        n as f64 / (cycles as f64 * cfg.num_fus() as f64)
    };
    Schedule {
        cycles,
        start,
        peak_parallelism: peak,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_frames::{FrameOp, FrameValue};
    use needle_ir::{Constant, Type};
    use needle_regions::OffloadRegion;

    fn frame_with_ops(ops: Vec<FrameOp>) -> Frame {
        Frame {
            ops,
            live_ins: vec![],
            live_outs: vec![],
            guards: vec![],
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
        }
    }

    fn add_op(args: Vec<FrameValue>) -> FrameOp {
        FrameOp {
            kind: FrameOpKind::Compute(Op::Add),
            args,
            ty: Type::I64,
            pred: None,
            src: None,
            imm: 0,
        }
    }

    #[test]
    fn independent_ops_schedule_in_parallel() {
        let cfg = CgraConfig::default();
        let c = FrameValue::Const(Constant::Int(1));
        let ops = (0..10).map(|_| add_op(vec![c, c])).collect();
        let s = schedule_frame(&cfg, &frame_with_ops(ops));
        assert_eq!(s.cycles, 1); // all start at cycle 0, 1-cycle latency
        assert_eq!(s.peak_parallelism, 10);
    }

    #[test]
    fn chains_serialize() {
        let cfg = CgraConfig::default();
        let c = FrameValue::Const(Constant::Int(1));
        let mut ops = vec![add_op(vec![c, c])];
        for i in 0..9 {
            ops.push(add_op(vec![FrameValue::Op(i), c]));
        }
        let s = schedule_frame(&cfg, &frame_with_ops(ops));
        assert_eq!(s.cycles, 10);
        assert!(s.start.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn memory_ports_throttle_loads() {
        let cfg = CgraConfig::default();
        let addr = FrameValue::Const(Constant::Ptr(0));
        let ops: Vec<FrameOp> = (0..8)
            .map(|_| FrameOp {
                kind: FrameOpKind::Load,
                args: vec![addr],
                ty: Type::I64,
                pred: None,
                src: None,
                imm: 0,
            })
            .collect();
        let s = schedule_frame(&cfg, &frame_with_ops(ops));
        // 8 loads over 4 ports: second wave starts at cycle 1.
        assert_eq!(s.cycles, 1 + cfg.load_latency);
        assert_eq!(s.start.iter().filter(|c| **c == 0).count(), 4);
        assert_eq!(s.start.iter().filter(|c| **c == 1).count(), 4);
    }

    #[test]
    fn fu_count_bounds_issue_width() {
        let cfg = CgraConfig {
            rows: 2,
            cols: 2, // 4 FUs
            ..CgraConfig::default()
        };
        let c = FrameValue::Const(Constant::Int(1));
        let ops = (0..9).map(|_| add_op(vec![c, c])).collect();
        let s = schedule_frame(&cfg, &frame_with_ops(ops));
        // 9 ops over 4 FUs/cycle: starts at cycles 0,0,0,0,1,1,1,1,2.
        assert_eq!(s.cycles, 3);
        assert!(s.utilization > 0.7);
    }

    #[test]
    fn empty_frame_is_free() {
        let s = schedule_frame(&CgraConfig::default(), &frame_with_ops(vec![]));
        assert_eq!(s.cycles, 0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn latencies_differ_by_op_class() {
        let cfg = CgraConfig::default();
        assert_eq!(op_latency(&cfg, FrameOpKind::Compute(Op::Add)), 1);
        assert_eq!(op_latency(&cfg, FrameOpKind::Compute(Op::FMul)), 3);
        assert_eq!(op_latency(&cfg, FrameOpKind::Compute(Op::Div)), 12);
        assert_eq!(op_latency(&cfg, FrameOpKind::Compute(Op::FSqrt)), 12);
        assert_eq!(op_latency(&cfg, FrameOpKind::Load), 4);
        assert_eq!(op_latency(&cfg, FrameOpKind::Store), 1);
        assert_eq!(op_latency(&cfg, FrameOpKind::Guard { expected: true }), 1);
    }
}
