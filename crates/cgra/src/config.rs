//! CGRA fabric parameters (Table V of the paper).

/// Configuration of the modelled CGRA fabric.
///
/// Defaults follow Table V: a 16×8 grid of function units, 16-cycle
/// reconfiguration, and the published dynamic energy parameters. The fabric
/// is uncore and cache coherent: memory operations go to the shared L2
/// (NUCA, 20-cycle access).
#[derive(Debug, Clone, PartialEq)]
pub struct CgraConfig {
    /// Function-unit grid rows.
    pub rows: usize,
    /// Function-unit grid columns.
    pub cols: usize,
    /// Cycles to load a new configuration onto the fabric.
    pub reconfig_cycles: u64,
    /// Memory operations the fabric can issue per cycle.
    pub mem_ports: usize,
    /// Integer-op latency (cycles).
    pub int_latency: u64,
    /// Floating-point-op latency (cycles).
    pub fp_latency: u64,
    /// Integer divide/remainder latency (cycles).
    pub div_latency: u64,
    /// Load latency seen by the dataflow graph. The fabric issues memory
    /// operations through a small coherent access buffer that filters the
    /// 20-cycle L2 round trip (the paper models CGRA memory operations "in
    /// detail"; without such filtering no memory-bearing region can beat a
    /// host whose L1 hits in 2 cycles — see DESIGN.md).
    pub load_latency: u64,
    /// Store latency as seen by the dataflow graph (fire-and-forget).
    pub store_latency: u64,
    /// Cycles to transfer one live-in/live-out value over the L2.
    pub live_transfer_cycles: u64,
    /// Cross-invocation pipelining depth for chained (§IV-A expanded)
    /// invocations: successive frames overlap up to this many stages, so a
    /// chained commit costs at least `makespan / pipeline_depth` cycles
    /// even when recurrences and resources would allow more overlap.
    pub pipeline_depth: u64,
    /// Dynamic energy per network switch+link traversal (pJ).
    pub e_network_pj: f64,
    /// Dynamic energy per integer-FU op (pJ).
    pub e_int_pj: f64,
    /// Dynamic energy per FPU op (pJ).
    pub e_fpu_pj: f64,
    /// Dynamic energy per latch (pJ), paid once per op result.
    pub e_latch_pj: f64,
    /// Energy per live value transferred over the L2 (pJ).
    pub e_live_transfer_pj: f64,
}

impl Default for CgraConfig {
    fn default() -> CgraConfig {
        CgraConfig {
            rows: 16,
            cols: 8,
            reconfig_cycles: 16,
            mem_ports: 4,
            int_latency: 1,
            fp_latency: 3,
            div_latency: 12,
            load_latency: 4,
            store_latency: 1,
            live_transfer_cycles: 1,
            pipeline_depth: 2,
            e_network_pj: 12.0,
            e_int_pj: 8.0,
            e_fpu_pj: 25.0,
            e_latch_pj: 5.0,
            e_live_transfer_pj: 50.0,
        }
    }
}

impl CgraConfig {
    /// Total function units available.
    pub fn num_fus(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_v() {
        let c = CgraConfig::default();
        assert_eq!(c.num_fus(), 128);
        assert_eq!(c.reconfig_cycles, 16);
        assert_eq!(c.e_network_pj, 12.0);
        assert_eq!(c.e_int_pj, 8.0);
        assert_eq!(c.e_fpu_pj, 25.0);
        assert_eq!(c.e_latch_pj, 5.0);
    }
}
