//! Invocation-level CGRA cost model: reconfiguration, transfers, rollback.

use needle_frames::Frame;

use crate::config::CgraConfig;
use crate::energy::{frame_energy, FrameEnergy};
use crate::sched::{schedule_frame, Schedule};

/// How an invocation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationKind {
    /// All guards passed; stores committed, live-outs transferred.
    Commit,
    /// A guard failed; undo-log rollback, host re-executes the region.
    Abort,
}

/// Precomputed per-invocation costs of one frame on the fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct CgraCost {
    /// The frame schedule on the fabric.
    pub schedule: Schedule,
    /// Per-invocation dynamic energy.
    pub energy: FrameEnergy,
    /// Cycles for a committing invocation (transfer + compute).
    pub commit_cycles: u64,
    /// Cycles for a committing invocation that *chains* a previous commit
    /// across a loop back edge (§IV-A target expansion): live values stay
    /// resident in the fabric, so only the dataflow makespan is paid.
    pub chained_commit_cycles: u64,
    /// Extra cycles burnt by an aborting invocation before the host takes
    /// over (full speculative execution + rollback stores).
    pub abort_cycles: u64,
    /// One-time configuration cost when the frame is (re)loaded.
    pub reconfig_cycles: u64,
}

impl CgraCost {
    /// Build the cost model for `frame` under `cfg`.
    pub fn new(cfg: &CgraConfig, frame: &Frame) -> CgraCost {
        let schedule = schedule_frame(cfg, frame);
        let energy = frame_energy(cfg, frame);
        // Live values move over the 64-byte L2 interface in bursts of four
        // 8-byte words after a fixed handshake.
        let burst = |vals: usize| 2 + (vals as u64).div_ceil(4) * cfg.live_transfer_cycles;
        let transfer = burst(frame.live_ins.len()) + burst(frame.live_outs.len());
        let commit_cycles = transfer + schedule.cycles;
        // Chained invocations pipeline on the fabric (§IV-A loop
        // pipelining): throughput is bounded by resource pressure, by the
        // loop-carried recurrence, and by the configured pipelining depth.
        let real_ops = frame
            .ops
            .iter()
            .filter(|o| !crate::sched::is_pred_logic(o))
            .count() as u64;
        let mem_ops = frame.num_mem_ops() as u64;
        let resource_ii = (real_ops.div_ceil(cfg.num_fus() as u64))
            .max(mem_ops.div_ceil(cfg.mem_ports as u64));
        let recurrence_ii = recurrence_interval(cfg, frame);
        let pipeline_floor = schedule.cycles.div_ceil(cfg.pipeline_depth.max(1));
        // Each commit still pays a handshake: guard collection across the
        // fabric plus releasing the buffered stores through the ports.
        let commit_overhead = 2
            + (frame.guards.len() as u64).div_ceil(4)
            + (frame.undo_log_size as u64).div_ceil(cfg.mem_ports as u64);
        let chained_commit_cycles = (resource_ii
            .max(recurrence_ii)
            .max(pipeline_floor)
            .max(1)
            + commit_overhead)
            .min(schedule.cycles.max(1));
        // Abort: live-ins were transferred, the whole frame ran (guards are
        // only checked at the end — the paper's conservative assumption),
        // then the undo log replays serially through the memory ports.
        let rollback = frame.undo_log_size as u64 * cfg.store_latency.max(1);
        let abort_cycles = burst(frame.live_ins.len()) + schedule.cycles + rollback;
        CgraCost {
            schedule,
            energy,
            commit_cycles,
            chained_commit_cycles,
            abort_cycles,
            reconfig_cycles: cfg.reconfig_cycles,
        }
    }

    /// Cycles of one invocation of the given kind (excluding
    /// reconfiguration, which is paid once per frame residency).
    pub fn cycles(&self, kind: InvocationKind) -> u64 {
        match kind {
            InvocationKind::Commit => self.commit_cycles,
            InvocationKind::Abort => self.abort_cycles,
        }
    }

    /// Energy of one invocation (pJ). Aborts burn the same dataflow energy
    /// (full speculation) but skip the live-out transfer.
    pub fn energy_pj(&self, kind: InvocationKind) -> f64 {
        match kind {
            InvocationKind::Commit => self.energy.total_pj(),
            InvocationKind::Abort => self.energy.total_pj() - self.energy.transfer_pj / 2.0,
        }
    }
}

/// Longest-latency dependence path from any loop-carried live-in to its
/// paired live-out: the initiation interval the recurrence forces on
/// back-to-back chained invocations.
fn recurrence_interval(cfg: &CgraConfig, frame: &Frame) -> u64 {
    use needle_frames::FrameValue;
    let mut worst = 1u64;
    for &(li, lo) in &frame.loop_carried {
        // dist[i]: longest latency path from the live-in to op i's output,
        // or None when op i does not depend on the live-in.
        let mut dist: Vec<Option<u64>> = vec![None; frame.ops.len()];
        for (i, op) in frame.ops.iter().enumerate() {
            let mut best: Option<u64> = None;
            let honors_pred = matches!(op.kind, needle_frames::FrameOpKind::Store);
            for a in op
                .args
                .iter()
                .chain(op.pred.iter().filter(|_| honors_pred))
            {
                let d = match a {
                    FrameValue::LiveIn(k) if *k == li => Some(0),
                    FrameValue::Op(j) => dist[*j],
                    _ => None,
                };
                if let Some(d) = d {
                    best = Some(best.map_or(d, |b: u64| b.max(d)));
                }
            }
            let lat = if crate::sched::is_pred_logic(op) {
                0
            } else {
                crate::sched::op_latency(cfg, op.kind)
            };
            dist[i] = best.map(|d| d + lat);
        }
        let end = match frame.live_outs.get(lo).map(|l| l.value) {
            Some(FrameValue::Op(j)) => dist[j].unwrap_or(1),
            Some(FrameValue::LiveIn(k)) if k == li => 1,
            _ => 1,
        };
        worst = worst.max(end.max(1));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_frames::build_frame;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::{BlockId, Type, Value as V};
    use needle_regions::OffloadRegion;

    fn sample_frame() -> Frame {
        let mut fb = FunctionBuilder::new("f", &[Type::I64, Type::Ptr], Some(Type::I64));
        let entry = fb.entry();
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        let done = fb.block("done");
        fb.switch_to(entry);
        let z = fb.mul(fb.arg(0), V::int(3));
        let c = fb.icmp_sgt(z, V::int(0));
        fb.cond_br(c, hot, cold);
        fb.switch_to(hot);
        fb.store(z, fb.arg(1));
        fb.br(done);
        fb.switch_to(cold);
        fb.br(done);
        fb.switch_to(done);
        fb.ret(Some(z));
        let f = fb.finish();
        build_frame(
            &f,
            &OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 10, 0.8),
        )
        .unwrap()
    }

    #[test]
    fn commit_includes_transfers_and_compute() {
        let cfg = CgraConfig::default();
        let frame = sample_frame();
        let cost = CgraCost::new(&cfg, &frame);
        let burst = |v: usize| 2 + (v as u64).div_ceil(4) * cfg.live_transfer_cycles;
        let expected_transfer = burst(frame.live_ins.len()) + burst(frame.live_outs.len());
        assert_eq!(
            cost.cycles(InvocationKind::Commit),
            expected_transfer + cost.schedule.cycles
        );
        assert_eq!(cost.chained_commit_cycles, cost.schedule.cycles);
        assert!(cost.chained_commit_cycles < cost.commit_cycles);
        assert_eq!(cost.reconfig_cycles, 16);
    }

    #[test]
    fn abort_costs_rollback_but_not_liveout_transfer() {
        let cfg = CgraConfig::default();
        let frame = sample_frame();
        let cost = CgraCost::new(&cfg, &frame);
        let abort = cost.cycles(InvocationKind::Abort);
        // abort pays live-in transfer + schedule + rollback of 1 store
        let expect = 2
            + (frame.live_ins.len() as u64).div_ceil(4) * cfg.live_transfer_cycles
            + cost.schedule.cycles
            + frame.undo_log_size as u64;
        assert_eq!(abort, expect);
        // abort energy is strictly less than commit energy (no live-out
        // transfer) but still positive (wasted speculation).
        assert!(cost.energy_pj(InvocationKind::Abort) < cost.energy_pj(InvocationKind::Commit));
        assert!(cost.energy_pj(InvocationKind::Abort) > 0.0);
    }
}
