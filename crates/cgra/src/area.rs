//! FPGA area/power estimation — the §VI HLS substitute.
//!
//! The paper synthesizes Braid RTL for an Altera Cyclone V SoC (≈85 K
//! adaptive logic modules) and reports ALM utilisation and Modelsim power.
//! We cannot run vendor synthesis here, so this module estimates ALMs from
//! the frame's op mix using published per-operator costs for Cyclone-class
//! devices. The estimator reproduces the paper's qualitative result:
//! integer frames stay under 20% utilisation while double-precision
//! floating-point frames (cf. 470.lbm) dominate the device.

use needle_frames::{Frame, FrameOpKind};
use needle_ir::Op;

/// Device capacity of the modelled Cyclone V SoC part.
pub const DEVICE_ALMS: u64 = 85_000;

/// Estimated synthesis results for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Adaptive logic modules consumed.
    pub alms: u64,
    /// Fraction of the device used (`alms / 85_000`).
    pub utilization: f64,
    /// Estimated dynamic power at 50 MHz fabric clock (milliwatts).
    pub dynamic_mw: f64,
}

/// ALM cost of one operator (Cyclone-class soft logic, 64-bit datapath).
pub fn op_alms(kind: FrameOpKind) -> u64 {
    match kind {
        FrameOpKind::Load | FrameOpKind::Store => 180, // LSU port share + fifo
        FrameOpKind::Guard { .. } => 12,
        FrameOpKind::Compute(op) => match op {
            Op::Add | Op::Sub => 32,
            Op::Mul => 120,          // DSP-assisted
            Op::Div | Op::Rem => 650,
            Op::And | Op::Or | Op::Xor => 16,
            Op::Shl | Op::Shr => 48,
            Op::FAdd | Op::FSub => 480,
            Op::FMul => 340,         // hard DSP blocks absorb the multiplier
            Op::FDiv => 1450,
            Op::FSqrt => 1100,
            Op::ICmp(_) => 22,
            Op::FCmp(_) => 110,
            Op::Select => 16,
            Op::IToF | Op::FToI => 210,
            Op::Gep => 40,
            Op::Load | Op::Store | Op::Call(_) | Op::Phi => 0,
        },
    }
}

/// Estimate ALMs and power for `frame`.
pub fn estimate_area(frame: &Frame) -> AreaEstimate {
    let mut alms: u64 = 600; // frame controller, undo-log FSM, AXI interface
    alms += frame.undo_log_size as u64 * 90; // undo-log entries (MLAB based)
    alms += (frame.live_ins.len() + frame.live_outs.len()) as u64 * 24; // I/O regs
    for op in &frame.ops {
        alms += op_alms(op.kind);
    }
    let utilization = alms as f64 / DEVICE_ALMS as f64;
    // Power: ~0.55 µW per ALM of active soft logic at 50 MHz plus a per-FP-op
    // surcharge (double-precision units toggle wide datapaths).
    let fp_ops = frame.num_float_ops() as f64;
    let dynamic_mw = alms as f64 * 0.00055 + fp_ops * 1.9;
    AreaEstimate {
        alms,
        utilization,
        dynamic_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_frames::{FrameOp, FrameValue};
    use needle_ir::{Constant, Type};
    use needle_regions::OffloadRegion;

    fn frame_of(kinds: Vec<FrameOpKind>) -> Frame {
        let c = FrameValue::Const(Constant::Int(1));
        Frame {
            ops: kinds
                .into_iter()
                .map(|kind| FrameOp {
                    kind,
                    args: vec![c, c],
                    ty: Type::I64,
                    pred: None,
                    src: None,
                    imm: 0,
                })
                .collect(),
            live_ins: vec![],
            live_outs: vec![],
            guards: vec![],
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
        }
    }

    #[test]
    fn integer_frames_are_small_fp_frames_are_big() {
        let int_frame = frame_of(vec![FrameOpKind::Compute(Op::Add); 40]);
        let fp_frame = frame_of(vec![FrameOpKind::Compute(Op::FDiv); 40]);
        let ei = estimate_area(&int_frame);
        let ef = estimate_area(&fp_frame);
        assert!(ei.utilization < 0.20, "int frame {:.3}", ei.utilization);
        assert!(ef.utilization > 0.5, "fp frame {:.3}", ef.utilization);
        assert!(ef.dynamic_mw > ei.dynamic_mw * 5.0);
    }

    #[test]
    fn area_grows_monotonically_with_ops() {
        let small = frame_of(vec![FrameOpKind::Compute(Op::Add); 5]);
        let big = frame_of(vec![FrameOpKind::Compute(Op::Add); 50]);
        assert!(estimate_area(&big).alms > estimate_area(&small).alms);
    }

    #[test]
    fn per_op_costs_are_positive() {
        for k in [
            FrameOpKind::Load,
            FrameOpKind::Store,
            FrameOpKind::Guard { expected: true },
            FrameOpKind::Compute(Op::FSqrt),
            FrameOpKind::Compute(Op::Gep),
        ] {
            assert!(op_alms(k) > 0);
        }
    }
}
