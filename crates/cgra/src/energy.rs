//! Per-invocation dynamic energy of a scheduled frame.

use needle_frames::{Frame, FrameOpKind};

use crate::config::CgraConfig;

/// Energy breakdown of one frame invocation (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameEnergy {
    /// Function-unit switching energy.
    pub fu_pj: f64,
    /// Network switch+link energy (one traversal per dataflow operand).
    pub network_pj: f64,
    /// Result-latch energy (one per op).
    pub latch_pj: f64,
    /// Live-in/live-out transfer energy over the L2.
    pub transfer_pj: f64,
}

impl FrameEnergy {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.fu_pj + self.network_pj + self.latch_pj + self.transfer_pj
    }
}

/// Dynamic energy of executing `frame` once on the fabric.
///
/// Every op executes (dataflow predication — speculation means untaken arms
/// still burn energy, which is exactly the Braid-vs-path trade-off the
/// paper discusses).
pub fn frame_energy(cfg: &CgraConfig, frame: &Frame) -> FrameEnergy {
    let mut e = FrameEnergy::default();
    for op in &frame.ops {
        if crate::sched::is_pred_logic(op) {
            // Predicate-network bit: a latch, not a function unit.
            e.latch_pj += cfg.e_latch_pj;
            continue;
        }
        let is_float = matches!(op.kind, FrameOpKind::Compute(o) if o.is_float());
        e.fu_pj += if is_float { cfg.e_fpu_pj } else { cfg.e_int_pj };
        // One network traversal per operand that comes from another op or a
        // live-in (constants are baked into the FU configuration).
        let edges = op
            .args
            .iter()
            .chain(op.pred.iter())
            .filter(|a| !matches!(a, needle_frames::FrameValue::Const(_)))
            .count();
        e.network_pj += edges as f64 * cfg.e_network_pj;
        e.latch_pj += cfg.e_latch_pj;
    }
    e.transfer_pj =
        (frame.live_ins.len() + frame.live_outs.len()) as f64 * cfg.e_live_transfer_pj;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_frames::{FrameOp, FrameValue, LiveIn};
    use needle_ir::{Constant, Op, Type, Value};
    use needle_regions::OffloadRegion;

    #[test]
    fn energy_accounts_fu_network_latch_and_transfer() {
        let cfg = CgraConfig::default();
        let add = FrameOp {
            kind: FrameOpKind::Compute(Op::Add),
            args: vec![FrameValue::LiveIn(0), FrameValue::Const(Constant::Int(1))],
            ty: Type::I64,
            pred: None,
            src: None,
            imm: 0,
        };
        let fmul = FrameOp {
            kind: FrameOpKind::Compute(Op::FMul),
            args: vec![FrameValue::Op(0), FrameValue::Op(0)],
            ty: Type::F64,
            pred: None,
            src: None,
            imm: 0,
        };
        let frame = Frame {
            ops: vec![add, fmul],
            live_ins: vec![LiveIn {
                value: Value::Arg(0),
                ty: Type::I64,
            }],
            live_outs: vec![],
            guards: vec![],
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
        };
        let e = frame_energy(&cfg, &frame);
        assert_eq!(e.fu_pj, 8.0 + 25.0);
        // add: 1 non-const operand; fmul: 2 → 3 traversals.
        assert_eq!(e.network_pj, 3.0 * 12.0);
        assert_eq!(e.latch_pj, 2.0 * 5.0);
        assert_eq!(e.transfer_pj, 1.0 * cfg.e_live_transfer_pj);
        assert!((e.total_pj() - (33.0 + 36.0 + 10.0 + 50.0)).abs() < 1e-9);
    }
}
