//! Property tests for the CGRA scheduler and cost model, driven by a
//! seeded RNG so every run checks the same deterministic shape sample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use needle_cgra::{frame_energy, schedule_frame, CgraConfig, CgraCost, InvocationKind};
use needle_frames::{Frame, FrameOp, FrameOpKind, FrameValue, LiveIn};
use needle_ir::{Constant, Op, Type, Value};
use needle_regions::OffloadRegion;

/// Build a random-but-valid dataflow frame: each op draws operands from
/// earlier ops, live-ins, or constants.
fn random_frame(shape: &[(u8, u8)]) -> Frame {
    let mut ops = Vec::new();
    for (i, (kind_sel, src_sel)) in shape.iter().enumerate() {
        let pick = |sel: u8| -> FrameValue {
            if i == 0 || sel.is_multiple_of(3) {
                FrameValue::LiveIn(0)
            } else if sel % 3 == 1 {
                FrameValue::Const(Constant::Int(sel as i64))
            } else {
                FrameValue::Op((sel as usize * 7 + i) % i)
            }
        };
        let kind = match kind_sel % 5 {
            0 => FrameOpKind::Compute(Op::Add),
            1 => FrameOpKind::Compute(Op::FMul),
            2 => FrameOpKind::Compute(Op::Mul),
            3 => FrameOpKind::Load,
            _ => FrameOpKind::Compute(Op::Xor),
        };
        let args = match kind {
            FrameOpKind::Load => vec![pick(*src_sel)],
            _ => vec![pick(*src_sel), pick(src_sel.wrapping_add(1))],
        };
        ops.push(FrameOp {
            kind,
            args,
            ty: Type::I64,
            pred: None,
            src: None,
            imm: 0,
        });
    }
    Frame {
        ops,
        live_ins: vec![LiveIn {
            value: Value::Arg(0),
            ty: Type::I64,
        }],
        live_outs: vec![],
        guards: vec![],
        phis_cancelled: 0,
        undo_log_size: 0,
        loop_carried: vec![],
        region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
    }
}

/// Draw a random op shape: `(kind selector, operand selector)` pairs.
fn random_shape(rng: &mut StdRng) -> Vec<(u8, u8)> {
    let len = rng.gen_range(1usize..60);
    (0..len)
        .map(|_| (rng.gen_range(0u8..=255), rng.gen_range(0u8..=255)))
        .collect()
}

/// Schedules respect dataflow: no op starts before its operands finish.
#[test]
fn schedule_respects_dependences() {
    let mut rng = StdRng::seed_from_u64(0xC64A1);
    for case in 0..64 {
        let shape = random_shape(&mut rng);
        let cfg = CgraConfig::default();
        let frame = random_frame(&shape);
        frame.validate().unwrap();
        let s = schedule_frame(&cfg, &frame);
        for (i, op) in frame.ops.iter().enumerate() {
            for a in &op.args {
                if let FrameValue::Op(j) = a {
                    let j_end =
                        s.start[*j] + needle_cgra::sched::op_latency(&cfg, frame.ops[*j].kind);
                    assert!(
                        s.start[i] >= j_end || matches!(frame.ops[*j].ty, Type::I1),
                        "case {case}: op {i} starts {} before op {j} ends {}",
                        s.start[i],
                        j_end
                    );
                }
            }
        }
        assert!(s.cycles >= 1, "case {case}");
    }
}

/// More function units never slow a frame down.
#[test]
fn wider_fabric_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC64A2);
    for case in 0..64 {
        let shape = random_shape(&mut rng);
        let frame = random_frame(&shape);
        let narrow = CgraConfig {
            rows: 2,
            cols: 2,
            ..CgraConfig::default()
        };
        let wide = CgraConfig::default();
        let a = schedule_frame(&narrow, &frame).cycles;
        let b = schedule_frame(&wide, &frame).cycles;
        assert!(b <= a, "case {case}: wide {b} > narrow {a}");
    }
}

/// Cost-model invariants: chained ≤ commit; abort ≥ schedule; energy
/// positive and additive in the op count.
#[test]
fn cost_model_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC64A3);
    for case in 0..64 {
        let shape = random_shape(&mut rng);
        let cfg = CgraConfig::default();
        let frame = random_frame(&shape);
        let cost = CgraCost::new(&cfg, &frame);
        assert!(cost.chained_commit_cycles <= cost.commit_cycles, "case {case}");
        assert!(
            cost.cycles(InvocationKind::Abort) >= cost.schedule.cycles,
            "case {case}"
        );
        let e = frame_energy(&cfg, &frame);
        assert!(e.total_pj() > 0.0, "case {case}");
        assert!(
            e.fu_pj >= frame.ops.len() as f64 * cfg.e_int_pj.min(cfg.e_latch_pj),
            "case {case}"
        );
    }
}
