//! Property and stress tests for the Ball-Larus machinery.

use needle_ir::builder::FunctionBuilder;
use needle_ir::interp::{Interp, Memory};
use needle_ir::{Constant, Function, Module, Type, Value};
use needle_profile::bl::{BlError, BlNumbering};
use needle_profile::profiler::PathProfiler;

/// A chain of `n` diamonds (2^n static paths).
fn diamonds(n: usize) -> Function {
    let mut fb = FunctionBuilder::new("d", &[Type::I64], Some(Type::I64));
    let mut cur = Value::Arg(0);
    for k in 0..n {
        let t = fb.block(format!("t{k}"));
        let e = fb.block(format!("e{k}"));
        let m = fb.block(format!("m{k}"));
        let c = fb.icmp_sgt(cur, Value::int(k as i64));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let tv = fb.add(cur, Value::int(1));
        fb.br(m);
        fb.switch_to(e);
        let ev = fb.sub(cur, Value::int(1));
        fb.br(m);
        fb.switch_to(m);
        cur = fb.phi(Type::I64, &[(t, tv), (e, ev)]);
    }
    fb.ret(Some(cur));
    fb.finish()
}

#[test]
fn path_counts_are_exponential_in_diamonds() {
    for n in [1usize, 4, 10, 20] {
        let f = diamonds(n);
        let bl = BlNumbering::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 1u64 << n, "n={n}");
    }
}

#[test]
fn sixty_five_diamonds_overflow_u64() {
    let f = diamonds(65);
    assert_eq!(BlNumbering::new(&f).unwrap_err(), BlError::TooManyPaths);
}

#[test]
fn profiled_path_matches_execution_exactly() {
    // For each input, exactly one path executes; its decoded block sequence
    // must match the branch decisions the input implies.
    let f = diamonds(6);
    let mut m = Module::new("t");
    let id = m.push(f);
    for x in -3i64..8 {
        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(id, &[Constant::Int(x)], &mut mem, &mut prof)
            .unwrap();
        let p = prof.profile(id);
        assert_eq!(p.total(), 1, "one invocation, one acyclic path");
        let (pid, _) = p.counts.iter().next().unwrap();
        let blocks = prof.numbering(id).unwrap().decode(pid).unwrap();
        // Walk the function and check every taken arm agrees.
        let mut cur = x;
        for (k, w) in blocks.windows(2).enumerate().take(6) {
            // arm blocks are t{k} = 1 + 3k, e{k} = 2 + 3k
            let taken_t = w[1].0 == 1 + 3 * k as u32;
            let expect_t = cur > k as i64;
            if w[1].0 == 1 + 3 * k as u32 || w[1].0 == 2 + 3 * k as u32 {
                assert_eq!(taken_t, expect_t, "x={x} diamond {k}");
            }
            cur += if expect_t { 1 } else { -1 };
        }
    }
}

/// Nested-loop functions: counts collected by the profiler always sum
/// to the number of acyclic segments the trip counts imply. Exhaustive
/// over every (outer, inner) trip-count pair in 1..8 × 1..8.
#[test]
fn nested_loop_path_totals() {
    for outer in 1i64..8 {
        for inner in 1i64..8 {
            nested_loop_case(outer, inner);
        }
    }
}

fn nested_loop_case(outer: i64, inner: i64) {
    {
        // for i in 0..outer { for j in 0..inner { work } }
        let mut fb = FunctionBuilder::new("nest", &[Type::I64, Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let oh = fb.block("outer_head");
        let ih = fb.block("inner_head");
        let ib = fb.block("inner_body");
        let ol = fb.block("outer_latch");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(oh);
        fb.switch_to(oh);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c0 = fb.icmp_slt(i, fb.arg(0));
        fb.cond_br(c0, ih, exit);
        fb.switch_to(ih);
        let j = fb.phi(Type::I64, &[(oh, Value::int(0))]);
        let c1 = fb.icmp_slt(j, fb.arg(1));
        fb.cond_br(c1, ib, ol);
        fb.switch_to(ib);
        let j2 = fb.add(j, Value::int(1));
        fb.br(ih);
        fb.switch_to(ol);
        let i2 = fb.add(i, Value::int(1));
        fb.br(oh);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(ol);
        let j_id = j.as_inst().unwrap();
        f.inst_mut(j_id).args.push(j2);
        f.inst_mut(j_id).phi_blocks.push(ib);
        let mut m = Module::new("t");
        let id = m.push(f);

        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(id, &[Constant::Int(outer), Constant::Int(inner)], &mut mem, &mut prof)
            .unwrap();
        let p = prof.profile(id);
        // Acyclic segments: every back-edge traversal ends one, plus the
        // final exit. Back edges: inner runs outer*inner times, outer runs
        // outer times.
        let expected = (outer * inner) as u64 + outer as u64 + 1;
        assert_eq!(p.total(), expected, "outer={outer} inner={inner}");
        // Every recorded id decodes.
        let bl = prof.numbering(id).unwrap();
        for pid in p.counts.ids() {
            bl.decode(pid).unwrap();
        }
    }
}
