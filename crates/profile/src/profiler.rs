//! Online profilers: trace sinks that observe interpreter execution.

use std::collections::HashMap;

use needle_ir::interp::TraceSink;
use needle_ir::{BlockId, FuncId, Module};

use crate::bl::{BlNumbering, PathCounts};

/// The Ball-Larus path profile of one function.
#[derive(Debug, Clone, Default)]
pub struct PathProfile {
    /// `path id -> execution count`. Dense (`Vec` indexed by path id) for
    /// functions with a small path space, sparse beyond.
    pub counts: PathCounts,
    /// Sequence of completed path ids in execution order (the *path trace*
    /// used by §IV-A target expansion). Only recorded when tracing is on.
    pub trace: Vec<u64>,
}

impl PathProfile {
    /// Total completed paths.
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// Number of distinct executed paths (Table II column C1).
    pub fn distinct(&self) -> usize {
        self.counts.distinct()
    }
}

/// Collects Ball-Larus path profiles for every function in a module.
///
/// Implements [`TraceSink`]; feed it to
/// [`Interp::run`](needle_ir::interp::Interp::run).
#[derive(Debug)]
pub struct PathProfiler {
    numberings: HashMap<FuncId, BlNumbering>,
    profiles: HashMap<FuncId, PathProfile>,
    /// Per-invocation register stack: `(func, r, last_block)`.
    stack: Vec<(FuncId, u64, BlockId)>,
    record_trace: bool,
    /// Cap on recorded trace length per function (0 = unlimited).
    pub trace_limit: usize,
}

impl PathProfiler {
    /// Build numberings for every function of `module`. Functions whose
    /// path count overflows are skipped (they are never offload candidates).
    pub fn new(module: &Module) -> PathProfiler {
        let mut numberings = HashMap::new();
        for (id, f) in module.iter() {
            if let Ok(bl) = BlNumbering::new(f) {
                numberings.insert(id, bl);
            }
        }
        PathProfiler {
            numberings,
            profiles: HashMap::new(),
            stack: Vec::new(),
            record_trace: false,
            trace_limit: 4_000_000,
        }
    }

    /// Enable path-trace recording (needed for target expansion, Table III).
    pub fn with_trace(mut self) -> PathProfiler {
        self.record_trace = true;
        self
    }

    /// The numbering for `func`, if it was constructible.
    pub fn numbering(&self, func: FuncId) -> Option<&BlNumbering> {
        self.numberings.get(&func)
    }

    /// The collected profile for `func` (empty profile if never executed).
    pub fn profile(&self, func: FuncId) -> PathProfile {
        self.profiles.get(&func).cloned().unwrap_or_default()
    }

    /// All profiled functions.
    pub fn functions(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.profiles.keys().copied()
    }

    fn complete(&mut self, func: FuncId, id: u64) {
        let p = match self.profiles.entry(func) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                // Size the counter representation off the numbering: dense
                // for small path spaces, sparse otherwise.
                let counts = self
                    .numberings
                    .get(&func)
                    .map(PathCounts::for_numbering)
                    .unwrap_or_default();
                v.insert(PathProfile {
                    counts,
                    trace: Vec::new(),
                })
            }
        };
        p.counts.bump(id);
        if self.record_trace && (self.trace_limit == 0 || p.trace.len() < self.trace_limit) {
            p.trace.push(id);
        }
    }
}

impl TraceSink for PathProfiler {
    fn enter(&mut self, func: FuncId) {
        let r = self
            .numberings
            .get(&func)
            .map(|n| n.enter_increment())
            .unwrap_or(0);
        self.stack.push((func, r, BlockId(0)));
    }

    fn exit(&mut self, func: FuncId) {
        let Some((f, r, last)) = self.stack.pop() else {
            return;
        };
        debug_assert_eq!(f, func, "unbalanced enter/exit events");
        if let Some(n) = self.numberings.get(&func) {
            if let Ok(inc) = n.exit_increment(last) {
                self.complete(func, r + inc);
            }
        }
    }

    fn block(&mut self, _func: FuncId, bb: BlockId) {
        if let Some(top) = self.stack.last_mut() {
            top.2 = bb;
        }
    }

    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        let Some(n) = self.numberings.get(&func) else {
            return;
        };
        let Some(top) = self.stack.last_mut() else {
            return;
        };
        debug_assert_eq!(top.0, func);
        if n.is_back_edge(from, to) {
            let exit_inc = n
                .exit_increment(from)
                .expect("back-edge source has a fake exit edge");
            let id = top.1 + exit_inc;
            let restart = n
                .restart_increment(to)
                .expect("back-edge target has a fake entry edge");
            top.1 = restart;
            self.complete(func, id);
        } else if let Ok(inc) = n.edge_increment(from, to) {
            let top = self.stack.last_mut().expect("checked above");
            top.1 += inc;
        }
    }
}

/// Edge and block execution counts for every function in a module.
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    /// `(from, to) -> traversal count`.
    pub edges: HashMap<(BlockId, BlockId), u64>,
    /// `block -> execution count`.
    pub blocks: HashMap<BlockId, u64>,
}

impl EdgeProfile {
    /// Count for edge `from -> to` (0 if never traversed).
    pub fn edge(&self, from: BlockId, to: BlockId) -> u64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Count for `block` (0 if never executed).
    pub fn block(&self, bb: BlockId) -> u64 {
        self.blocks.get(&bb).copied().unwrap_or(0)
    }

    /// The hotter successor of `from` among the recorded out-edges, with its
    /// count. Ties break toward the smaller block id.
    pub fn hottest_successor(&self, from: BlockId) -> Option<(BlockId, u64)> {
        self.edges
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|((_, t), c)| (*t, *c))
            .max_by_key(|(t, c)| (*c, std::cmp::Reverse(*t)))
    }
}

/// Collects edge/block profiles per function.
#[derive(Debug, Default)]
pub struct EdgeProfiler {
    profiles: HashMap<FuncId, EdgeProfile>,
}

impl EdgeProfiler {
    /// An empty edge profiler.
    pub fn new() -> EdgeProfiler {
        EdgeProfiler::default()
    }

    /// The profile of `func` (empty if never executed).
    pub fn profile(&self, func: FuncId) -> EdgeProfile {
        self.profiles.get(&func).cloned().unwrap_or_default()
    }

    /// Shared access without cloning.
    pub fn profile_ref(&self, func: FuncId) -> Option<&EdgeProfile> {
        self.profiles.get(&func)
    }
}

impl TraceSink for EdgeProfiler {
    fn block(&mut self, func: FuncId, bb: BlockId) {
        let p = self.profiles.entry(func).or_default();
        *p.blocks.entry(bb).or_insert(0) += 1;
    }

    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        let p = self.profiles.entry(func).or_default();
        *p.edges.entry((from, to)).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Interp, Memory, TeeSink};
    use needle_ir::{Constant, Type, Value};

    /// for i in 0..n { if i % 3 == 0 { A } else { B } }
    fn mod3_loop() -> (Module, FuncId) {
        let mut fb = FunctionBuilder::new("mod3", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let thn = fb.block("then");
        let els = fb.block("else");
        let latch = fb.block("latch");
        let exit = fb.block("exit");
        let n = fb.arg(0);
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let s = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, n);
        fb.cond_br(c, thn, els);
        fb.switch_to(thn);
        let m = fb.rem(i, Value::int(3));
        let z = fb.icmp_eq(m, Value::int(0));
        let s_a = fb.add(s, Value::int(10));
        let s_b = fb.add(s, Value::int(1));
        let s2 = fb.select(Type::I64, z, s_a, s_b);
        fb.br(latch);
        fb.switch_to(els);
        fb.ret(Some(s));
        fb.switch_to(latch);
        let i2 = fb.add(i, Value::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(s));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        let s_id = s.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(latch);
        f.inst_mut(s_id).args.push(s2);
        f.inst_mut(s_id).phi_blocks.push(latch);
        let mut m = Module::new("t");
        let id = m.push(f);
        (m, id)
    }

    #[test]
    fn path_counts_match_loop_iterations() {
        let (m, f) = mod3_loop();
        let mut prof = PathProfiler::new(&m).with_trace();
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(f, &[Constant::Int(9)], &mut mem, &mut prof)
            .unwrap();
        let p = prof.profile(f);
        // 9 iterations end with back edges, plus the final head->else->ret.
        assert_eq!(p.total(), 10);
        assert_eq!(p.trace.len(), 10);
        // Paths observed decode to block sequences within the function.
        let bl = prof.numbering(f).unwrap();
        let total_freq_weighted: u64 = p
            .counts
            .iter()
            .map(|(id, c)| {
                let blocks = bl.decode(id).unwrap();
                assert!(!blocks.is_empty());
                c
            })
            .sum();
        assert_eq!(total_freq_weighted, 10);
    }

    #[test]
    fn per_path_counts_are_consistent_with_semantics() {
        let (m, f) = mod3_loop();
        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        let out = Interp::new(&m)
            .run(f, &[Constant::Int(9)], &mut mem, &mut prof)
            .unwrap();
        // 3 multiples of 3 (0,3,6) scoring 10, 6 others scoring 1.
        assert_eq!(out.unwrap().as_int(), 36);
        let p = prof.profile(f);
        // The body path (head, then, latch) repeats 9 times (select folds
        // the if internally, so one path covers all iterations), entry path
        // and final exit path occur once each... entry path = entry,head,
        // then,latch ends at the first back edge.
        let mut counts: Vec<u64> = p.counts.iter().map(|(_, c)| c).collect();
        counts.sort();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(p.distinct(), 3);
    }

    #[test]
    fn edge_profiler_counts_branch_sides() {
        let (m, f) = mod3_loop();
        let mut eprof = EdgeProfiler::new();
        let mut pprof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        let mut tee = TeeSink(&mut eprof, &mut pprof);
        Interp::new(&m)
            .run(f, &[Constant::Int(9)], &mut mem, &mut tee)
            .unwrap();
        let p = eprof.profile(f);
        // head executed 10 times: 9 into then, 1 into else.
        assert_eq!(p.block(BlockId(1)), 10);
        assert_eq!(p.edge(BlockId(1), BlockId(2)), 9);
        assert_eq!(p.edge(BlockId(1), BlockId(3)), 1);
        assert_eq!(p.hottest_successor(BlockId(1)), Some((BlockId(2), 9)));
        assert_eq!(p.edge(BlockId(4), BlockId(1)), 9); // back edge
    }

    #[test]
    fn nested_calls_keep_separate_path_state() {
        // inner(x) = x+1 ; outer loops calling inner
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("inner", &[Type::I64], Some(Type::I64));
        let v = fb.add(fb.arg(0), Value::int(1));
        fb.ret(Some(v));
        let inner = m.push(fb.finish());

        let mut fb = FunctionBuilder::new("outer", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.call(inner, Type::I64, &[i]);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(body);
        let outer = m.push(f);

        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(outer, &[Constant::Int(5)], &mut mem, &mut prof)
            .unwrap();
        assert_eq!(prof.profile(inner).total(), 5);
        assert_eq!(prof.profile(outer).total(), 6); // 5 back edges + final exit
    }
}
