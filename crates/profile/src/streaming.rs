//! Streaming epoch-based Ball-Larus profiling for the serving layer.
//!
//! The offline [`PathProfiler`](crate::profiler::PathProfiler) accumulates
//! one profile for the lifetime of a run. A *serving* process instead wants
//! cheap, sampled counters it can drain every epoch and feed to an online
//! re-ranker. This module provides that: a [`StreamingProfiler`] trace sink
//! whose accumulated state is taken wholesale by [`StreamingProfiler::
//! take_epoch`], plus the [`EpochProfile`] unit the governor merges,
//! decays, and ranks.
//!
//! Beyond plain BL counts, the sink keeps *cross-loop-iteration* accounting
//! in the style of D'Elia & Demetrescu's multi-iteration path profiling:
//! for every pair of consecutively completed paths within one invocation it
//! bumps a `(prev, next)` pair counter. The self-pair ratio
//! [`EpochProfile::stability`] separates steadily cyclic hot paths
//! (`AAAA…`, ratio → 1) from alternating ones (`ABAB…`, ratio → 0) that a
//! flat frequency count would rank identically — the governor uses it as a
//! promotion gate so only genuinely stable paths become offload regions.

use std::collections::HashMap;
use std::sync::Arc;

use needle_ir::interp::TraceSink;
use needle_ir::{BlockId, FuncId, Module};

use crate::bl::{BlNumbering, PathCounts};

/// Per-module Ball-Larus numberings, shared across profiler instances.
///
/// Numberings are pure functions of the module's CFG, and the serving
/// layer creates a fresh [`StreamingProfiler`] per *sampled request* (so a
/// cancelled run can't leak half a path into the epoch stream). Rebuilding
/// the numberings each time made the sample cost O(module), not O(trace);
/// building them once per resolved catalog entry and sharing the `Arc`
/// makes profiler construction allocation-only.
pub type SharedNumberings = Arc<HashMap<FuncId, BlNumbering>>;

/// Build the shared numbering table for every function of `module`;
/// functions with an overflowing path space are skipped (never offload
/// candidates).
pub fn build_numberings(module: &Module) -> SharedNumberings {
    let mut numberings = HashMap::new();
    for (id, f) in module.iter() {
        if let Ok(bl) = BlNumbering::new(f) {
            numberings.insert(id, bl);
        }
    }
    Arc::new(numberings)
}

/// One epoch's worth of sampled path observations for a single function.
#[derive(Debug, Clone, Default)]
pub struct EpochProfile {
    /// `path id -> completions` this epoch.
    pub counts: PathCounts,
    /// `(prev path id, next path id) -> occurrences`: consecutive path
    /// completions within one invocation (cross-loop-iteration pairs).
    pub pairs: HashMap<(u64, u64), u64>,
    /// Total completed paths this epoch (= `counts.total()`, cached).
    pub completed: u64,
    /// Function invocations observed this epoch.
    pub invocations: u64,
}

impl EpochProfile {
    /// Fold `other` into `self` (used when merging worker-local epochs).
    pub fn merge(&mut self, other: &EpochProfile) {
        for (id, n) in other.counts.iter() {
            self.counts.add(id, n);
        }
        for (k, n) in &other.pairs {
            *self.pairs.entry(*k).or_insert(0) += n;
        }
        self.completed += other.completed;
        self.invocations += other.invocations;
    }

    /// Decay every counter by half (integer floor), dropping entries that
    /// reach zero. Exponential decay keeps the governor's accumulated view
    /// responsive to traffic shifts without forgetting instantly.
    pub fn decay(&mut self) {
        let halved: Vec<(u64, u64)> = self.counts.iter().map(|(id, n)| (id, n / 2)).collect();
        let mut counts = PathCounts::default();
        for (id, n) in halved {
            counts.add(id, n);
        }
        self.counts = counts;
        self.pairs.retain(|_, n| {
            *n /= 2;
            *n > 0
        });
        self.completed = self.counts.total();
        self.invocations /= 2;
    }

    /// Self-succession ratio of path `id` in `[0, 1]`: the fraction of its
    /// completions immediately followed by another completion of itself.
    /// Steady cyclic paths score near 1; alternating paths near 0. Paths
    /// never observed score 0.
    pub fn stability(&self, id: u64) -> f64 {
        let n = self.counts.get(id);
        if n == 0 {
            return 0.0;
        }
        let own = self.pairs.get(&(id, id)).copied().unwrap_or(0);
        own as f64 / n as f64
    }

    /// Whether the epoch saw no activity at all.
    pub fn is_empty(&self) -> bool {
        self.completed == 0 && self.invocations == 0
    }
}

/// Sampled streaming profiler: a [`TraceSink`] attached to a fraction of
/// requests in the serving worker loop. Epochs are drained (not copied)
/// with [`StreamingProfiler::take_epoch`]; the BL numberings persist across
/// epochs so the per-request cost is the same counter discipline as the
/// offline profiler.
#[derive(Debug)]
pub struct StreamingProfiler {
    numberings: SharedNumberings,
    epoch: HashMap<FuncId, EpochProfile>,
    /// Per-invocation register stack: `(func, r, last block, previously
    /// completed path id within this invocation)`.
    stack: Vec<(FuncId, u64, BlockId, Option<u64>)>,
}

impl StreamingProfiler {
    /// Build numberings for every function of `module` and attach a fresh
    /// profiler to them. Prefer [`build_numberings`] +
    /// [`StreamingProfiler::with_numberings`] when profilers are created
    /// repeatedly for the same module.
    pub fn new(module: &Module) -> StreamingProfiler {
        StreamingProfiler::with_numberings(build_numberings(module))
    }

    /// A fresh profiler over pre-built shared numberings: no per-instance
    /// CFG work at all.
    pub fn with_numberings(numberings: SharedNumberings) -> StreamingProfiler {
        StreamingProfiler {
            numberings,
            epoch: HashMap::new(),
            stack: Vec::new(),
        }
    }

    /// The numbering for `func`, if constructible.
    pub fn numbering(&self, func: FuncId) -> Option<&BlNumbering> {
        self.numberings.get(&func)
    }

    /// Drain the accumulated epoch, leaving the profiler empty but warm
    /// (numberings retained). Any half-recorded invocation still on the
    /// stack keeps its register state and completes into the next epoch.
    pub fn take_epoch(&mut self) -> HashMap<FuncId, EpochProfile> {
        std::mem::take(&mut self.epoch)
    }

    /// Whether anything has been recorded since the last drain.
    pub fn has_data(&self) -> bool {
        !self.epoch.is_empty()
    }

    fn complete(&mut self, func: FuncId, id: u64, prev: Option<u64>) {
        let p = epoch_entry(&self.numberings, &mut self.epoch, func);
        p.counts.bump(id);
        p.completed += 1;
        if let Some(prev) = prev {
            *p.pairs.entry((prev, id)).or_insert(0) += 1;
        }
    }
}

/// Get-or-create the epoch slot for `func`, sizing the counter
/// representation off the numbering (dense for small path spaces).
fn epoch_entry<'a>(
    numberings: &HashMap<FuncId, BlNumbering>,
    epoch: &'a mut HashMap<FuncId, EpochProfile>,
    func: FuncId,
) -> &'a mut EpochProfile {
    match epoch.entry(func) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let counts = numberings
                .get(&func)
                .map(PathCounts::for_numbering)
                .unwrap_or_default();
            v.insert(EpochProfile {
                counts,
                ..EpochProfile::default()
            })
        }
    }
}

impl TraceSink for StreamingProfiler {
    fn enter(&mut self, func: FuncId) {
        let r = self
            .numberings
            .get(&func)
            .map(|n| n.enter_increment())
            .unwrap_or(0);
        self.stack.push((func, r, BlockId(0), None));
        epoch_entry(&self.numberings, &mut self.epoch, func).invocations += 1;
    }

    fn exit(&mut self, func: FuncId) {
        let Some((f, r, last, prev)) = self.stack.pop() else {
            return;
        };
        debug_assert_eq!(f, func, "unbalanced enter/exit events");
        if let Some(n) = self.numberings.get(&func) {
            if let Ok(inc) = n.exit_increment(last) {
                self.complete(func, r + inc, prev);
            }
        }
    }

    fn block(&mut self, _func: FuncId, bb: BlockId) {
        if let Some(top) = self.stack.last_mut() {
            top.2 = bb;
        }
    }

    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        let Some(n) = self.numberings.get(&func) else {
            return;
        };
        let Some(top) = self.stack.last_mut() else {
            return;
        };
        debug_assert_eq!(top.0, func);
        if n.is_back_edge(from, to) {
            let exit_inc = n
                .exit_increment(from)
                .expect("back-edge source has a fake exit edge");
            let id = top.1 + exit_inc;
            let restart = n
                .restart_increment(to)
                .expect("back-edge target has a fake entry edge");
            let prev = top.3.replace(id);
            top.1 = restart;
            self.complete(func, id, prev);
        } else if let Ok(inc) = n.edge_increment(from, to) {
            top.1 += inc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Interp, Memory};
    use needle_ir::{Constant, Type, Value};

    use crate::profiler::{PathProfile, PathProfiler};
    use crate::rank::rank_paths;

    /// for i in 0..n { if load(DATA + (i&mask)*8) < thr { fat } else { thin } }
    fn thresholded_loop() -> (Module, FuncId) {
        let mut fb = FunctionBuilder::new("phase", &[Type::I64, Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let fat = fb.block("fat");
        let thin = fb.block("thin");
        let latch = fb.block("latch");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let acc = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(0));
        let body = fb.block("body");
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let ix = fb.and(i, Value::int(63));
        let addr = fb.gep(Value::ptr(0x1_0000), ix, 8);
        let v = fb.load(Type::I64, addr);
        let hot = fb.icmp_slt(v, fb.arg(1));
        fb.cond_br(hot, fat, thin);
        fb.switch_to(fat);
        let mut a = acc;
        for _ in 0..8 {
            a = fb.add(a, Value::int(3));
        }
        fb.br(latch);
        fb.switch_to(thin);
        let t = fb.add(acc, Value::int(1));
        fb.br(latch);
        fb.switch_to(latch);
        let merged = fb.phi(Type::I64, &[(fat, a), (thin, t)]);
        let i2 = fb.add(i, Value::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(latch);
        let a_id = acc.as_inst().unwrap();
        f.inst_mut(a_id).args.push(merged);
        f.inst_mut(a_id).phi_blocks.push(latch);
        let mut m = Module::new("t");
        let id = m.push(f);
        (m, id)
    }

    fn run_with_data(
        m: &Module,
        f: FuncId,
        prof: &mut StreamingProfiler,
        trips: i64,
        thr: i64,
        data: impl Fn(u64) -> i64,
    ) {
        let mut mem = Memory::new();
        for i in 0..64u64 {
            mem.store(0x1_0000 + i * 8, needle_ir::interp::Val::Int(data(i)));
        }
        Interp::new(m)
            .run(f, &[Constant::Int(trips), Constant::Int(thr)], &mut mem, prof)
            .unwrap();
    }

    #[test]
    fn epoch_counts_match_offline_profiler() {
        let (m, f) = thresholded_loop();
        let mut streaming = StreamingProfiler::new(&m);
        let mut offline = PathProfiler::new(&m);
        let mut mem1 = Memory::new();
        let mut mem2 = Memory::new();
        for i in 0..64u64 {
            mem1.store(0x1_0000 + i * 8, needle_ir::interp::Val::Int((i % 3) as i64));
            mem2.store(0x1_0000 + i * 8, needle_ir::interp::Val::Int((i % 3) as i64));
        }
        let args = [Constant::Int(100), Constant::Int(2)];
        Interp::new(&m).run(f, &args, &mut mem1, &mut streaming).unwrap();
        Interp::new(&m).run(f, &args, &mut mem2, &mut offline).unwrap();
        let epoch = &streaming.take_epoch()[&f];
        let base = offline.profile(f);
        assert_eq!(epoch.completed, base.total());
        assert_eq!(epoch.invocations, 1);
        for (id, n) in base.counts.iter() {
            assert_eq!(epoch.counts.get(id), n, "path {id}");
        }
    }

    #[test]
    fn take_epoch_drains_and_profiler_stays_warm() {
        let (m, f) = thresholded_loop();
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 50, 100, |_| 0);
        let e1 = p.take_epoch();
        assert!(e1[&f].completed > 0);
        assert!(!p.has_data());
        run_with_data(&m, f, &mut p, 50, 100, |_| 0);
        let e2 = p.take_epoch();
        assert_eq!(e1[&f].completed, e2[&f].completed, "warm restart is identical");
    }

    #[test]
    fn stability_separates_steady_from_alternating_paths() {
        let (m, f) = thresholded_loop();
        // Steady: every iteration takes the fat arm.
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 200, 100, |_| 0);
        let steady = &p.take_epoch()[&f];
        let hot = steady
            .counts
            .iter()
            .max_by_key(|(_, n)| *n)
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            steady.stability(hot) > 0.9,
            "steady path should self-succeed: {}",
            steady.stability(hot)
        );

        // Alternating: data flips fat/thin every iteration.
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 200, 1, |i| (i % 2) as i64);
        let alt = &p.take_epoch()[&f];
        let (top, _) = alt.counts.iter().max_by_key(|(_, n)| *n).unwrap();
        assert!(
            alt.stability(top) < 0.2,
            "alternating path must not look steady: {}",
            alt.stability(top)
        );
    }

    #[test]
    fn merged_epochs_rank_like_one_big_profile() {
        let (m, f) = thresholded_loop();
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 60, 100, |_| 0);
        let mut acc = p.take_epoch().remove(&f).unwrap();
        run_with_data(&m, f, &mut p, 60, 100, |_| 0);
        let second = p.take_epoch().remove(&f).unwrap();
        acc.merge(&second);
        assert_eq!(acc.invocations, 2);

        let profile = PathProfile {
            counts: acc.counts.clone(),
            trace: vec![],
        };
        let rank = rank_paths(m.func(f), p.numbering(f).unwrap(), &profile);
        assert!(!rank.paths.is_empty());
        let top = rank.top().unwrap();
        // The fat-arm path dominates and its freq covers both epochs.
        assert!(top.freq >= 100, "freq {} spans merged epochs", top.freq);
        assert!(top.ops >= 8);
    }

    #[test]
    fn decay_halves_and_eventually_forgets() {
        let (m, f) = thresholded_loop();
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 40, 100, |_| 0);
        let mut e = p.take_epoch().remove(&f).unwrap();
        let before = e.completed;
        assert!(before > 0);
        e.decay();
        assert!(e.completed <= before / 2 + 1);
        for _ in 0..40 {
            e.decay();
        }
        assert!(e.is_empty(), "decay must converge to empty");
        assert!(e.pairs.is_empty());
    }

    #[test]
    fn phase_flip_moves_the_top_ranked_path() {
        // The governor's core premise: when traffic shifts, the drained
        // epochs must rank a different path on top.
        let (m, f) = thresholded_loop();
        let mut p = StreamingProfiler::new(&m);
        run_with_data(&m, f, &mut p, 200, 100, |_| 0); // all fat
        let fat_epoch = p.take_epoch().remove(&f).unwrap();
        run_with_data(&m, f, &mut p, 200, -1, |_| 0); // all thin
        let thin_epoch = p.take_epoch().remove(&f).unwrap();

        let rank_of = |e: &EpochProfile| {
            let profile = PathProfile {
                counts: e.counts.clone(),
                trace: vec![],
            };
            rank_paths(m.func(f), p.numbering(f).unwrap(), &profile)
                .top()
                .unwrap()
                .id
        };
        assert_ne!(
            rank_of(&fat_epoch),
            rank_of(&thin_epoch),
            "bias flip must change the top path"
        );
    }
}
