//! Path ranking by the paper's path-weight metric (§III-A).
//!
//! `Pwt = frequency × ops` — the number of dynamic instructions attributable
//! to a path, which is proportional to the front-end energy an accelerator
//! saves by eliding fetch/decode for that path. `Fwt` accumulates the `Pwt`
//! of every executed path of the function; `Pwt / Fwt` is the *coverage* of
//! a path (the fraction of the function's dynamic instructions it explains).

use needle_ir::{BlockId, Function};

use crate::bl::BlNumbering;
use crate::profiler::PathProfile;

/// One executed path with its ranking metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPath {
    /// Ball-Larus path id.
    pub id: u64,
    /// The block sequence of the path.
    pub blocks: Vec<BlockId>,
    /// Dynamic execution count.
    pub freq: u64,
    /// Static instruction count along the path (terminators excluded).
    pub ops: u64,
    /// Conditional branches traversed by the path (its guard count when
    /// offloaded; Table II column C4).
    pub branches: u64,
    /// Memory operations along the path (Table II column C7).
    pub mem_ops: u64,
    /// Path weight `freq × ops`.
    pub pwt: u128,
}

impl RankedPath {
    /// Coverage relative to a function weight.
    pub fn coverage(&self, fwt: u128) -> f64 {
        if fwt == 0 {
            0.0
        } else {
            self.pwt as f64 / fwt as f64
        }
    }
}

/// The ranked paths of one function.
#[derive(Debug, Clone)]
pub struct FunctionRank {
    /// Paths sorted by descending `Pwt` (ties: ascending id).
    pub paths: Vec<RankedPath>,
    /// Function weight: `Σ Pwt`, i.e. total dynamic instructions.
    pub fwt: u128,
}

impl FunctionRank {
    /// Coverage of the top `k` paths combined (Figure 6 / Table II C2).
    pub fn top_coverage(&self, k: usize) -> f64 {
        if self.fwt == 0 {
            return 0.0;
        }
        let sum: u128 = self.paths.iter().take(k).map(|p| p.pwt).sum();
        sum as f64 / self.fwt as f64
    }

    /// The highest ranked path, if any path executed.
    pub fn top(&self) -> Option<&RankedPath> {
        self.paths.first()
    }

    /// Number of distinct executed paths (Table II C1).
    pub fn executed_paths(&self) -> usize {
        self.paths.len()
    }

    /// Geometric-mean style overlap statistic: for the top `k` paths, the
    /// number of those paths sharing at least one basic block with the top
    /// path (Table II C8 measures block overlap among hot paths).
    pub fn overlapping_paths(&self, k: usize) -> usize {
        let Some(top) = self.top() else {
            return 0;
        };
        self.paths
            .iter()
            .take(k)
            .skip(1)
            .filter(|p| p.blocks.iter().any(|b| top.blocks.contains(b)))
            .count()
            + 1
    }
}

/// Rank every executed path of `func` by `Pwt`.
pub fn rank_paths(func: &Function, numbering: &BlNumbering, profile: &PathProfile) -> FunctionRank {
    let mut paths: Vec<RankedPath> = profile
        .counts
        .iter()
        .filter_map(|(id, freq)| {
            let blocks = numbering.decode(id).ok()?;
            let ops: u64 = blocks
                .iter()
                .map(|b| func.block(*b).insts.len() as u64)
                .sum();
            let branches = blocks
                .iter()
                .filter(|b| func.block(**b).term.is_cond())
                .count() as u64;
            let mem_ops: u64 = blocks.iter().map(|b| func.block_mem_ops(*b) as u64).sum();
            Some(RankedPath {
                id,
                blocks,
                freq,
                ops,
                branches,
                mem_ops,
                pwt: freq as u128 * ops as u128,
            })
        })
        .collect();
    paths.sort_by(|a, b| b.pwt.cmp(&a.pwt).then(a.id.cmp(&b.id)));
    let fwt = paths.iter().map(|p| p.pwt).sum();
    FunctionRank { paths, fwt }
}

/// Rank every profiled function of a module by its function weight
/// `Fwt = Σ Pwt` (the paper reports "the highest ranked function by
/// weight"). Returns `(function, Fwt)` pairs sorted descending.
pub fn rank_functions(
    module: &needle_ir::Module,
    profiler: &crate::profiler::PathProfiler,
) -> Vec<(needle_ir::FuncId, u128)> {
    let mut out: Vec<(needle_ir::FuncId, u128)> = profiler
        .functions()
        .filter_map(|f| {
            let numbering = profiler.numbering(f)?;
            let rank = rank_paths(module.func(f), numbering, &profiler.profile(f));
            Some((f, rank.fwt))
        })
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Interp, Memory};
    use needle_ir::{Constant, Module, Type, Value};

    use crate::profiler::PathProfiler;

    /// Loop with a biased branch: 7 of 8 iterations take the fat arm.
    fn biased_loop() -> (Module, needle_ir::FuncId) {
        let mut fb = FunctionBuilder::new("biased", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let fat = fb.block("fat");
        let thin = fb.block("thin");
        let latch = fb.block("latch");
        let exit = fb.block("exit");
        let n = fb.arg(0);
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, n);
        fb.cond_br(c, latch, exit);
        fb.switch_to(latch);
        let m8 = fb.rem(i, Value::int(8));
        let z = fb.icmp_eq(m8, Value::int(7));
        fb.cond_br(z, thin, fat);
        fb.switch_to(fat);
        // fat arm: lots of ops
        let mut acc = i;
        for _ in 0..10 {
            acc = fb.add(acc, Value::int(3));
        }
        fb.br(head);
        fb.switch_to(thin);
        let t = fb.add(i, Value::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        // incoming from fat and thin arms
        let i_fat = acc;
        f.inst_mut(i_id).args.push(i_fat);
        f.inst_mut(i_id).phi_blocks.push(fat);
        f.inst_mut(i_id).args.push(t);
        f.inst_mut(i_id).phi_blocks.push(thin);
        let mut m = Module::new("t");
        let id = m.push(f);
        (m, id)
    }

    #[test]
    fn fat_hot_path_ranks_first() {
        let (m, f) = biased_loop();
        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(f, &[Constant::Int(64)], &mut mem, &mut prof)
            .unwrap();
        // i advances by 30+ in the fat arm, so the loop runs few but typed
        // iterations; just check ranking invariants.
        let rank = rank_paths(m.func(f), prof.numbering(f).unwrap(), &prof.profile(f));
        assert!(!rank.paths.is_empty());
        // Sorted descending by pwt.
        for w in rank.paths.windows(2) {
            assert!(w[0].pwt >= w[1].pwt);
        }
        // fwt equals the sum.
        assert_eq!(rank.fwt, rank.paths.iter().map(|p| p.pwt).sum::<u128>());
        // Coverage of all paths is 1.
        let all = rank.top_coverage(rank.paths.len());
        assert!((all - 1.0).abs() < 1e-12);
        // Top path coverage matches its pwt share.
        let top = rank.top().unwrap();
        assert!((top.coverage(rank.fwt) - rank.top_coverage(1)).abs() < 1e-12);
        assert_eq!(rank.executed_paths(), rank.paths.len());
    }

    #[test]
    fn pwt_reflects_both_frequency_and_size() {
        let (m, f) = biased_loop();
        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(f, &[Constant::Int(200)], &mut mem, &mut prof)
            .unwrap();
        let rank = rank_paths(m.func(f), prof.numbering(f).unwrap(), &prof.profile(f));
        let top = rank.top().unwrap();
        // The top path must traverse the fat arm (which has 10+ adds).
        assert!(top.ops >= 10);
        assert!(top.pwt == top.freq as u128 * top.ops as u128);
        // overlap: every loop path shares the head block.
        assert!(rank.overlapping_paths(5) >= 2);
    }

    #[test]
    fn function_ranking_orders_by_weight() {
        // callee does 10x the work of the caller's own body
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("hot", &[Type::I64], Some(Type::I64));
        let mut x = fb.arg(0);
        for _ in 0..30 {
            x = fb.add(x, Value::int(1));
        }
        fb.ret(Some(x));
        let hot = m.push(fb.finish());
        let mut fb = FunctionBuilder::new("cold", &[Type::I64], Some(Type::I64));
        let r = fb.call(hot, Type::I64, &[fb.arg(0)]);
        fb.ret(Some(r));
        let cold = m.push(fb.finish());

        let mut prof = PathProfiler::new(&m);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(cold, &[Constant::Int(1)], &mut mem, &mut prof)
            .unwrap();
        let ranking = rank_functions(&m, &prof);
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].0, hot);
        assert!(ranking[0].1 > ranking[1].1);
    }

    #[test]
    fn empty_profile_ranks_empty() {
        let (m, f) = biased_loop();
        let prof = PathProfiler::new(&m);
        let rank = rank_paths(m.func(f), prof.numbering(f).unwrap(), &prof.profile(f));
        assert!(rank.paths.is_empty());
        assert_eq!(rank.fwt, 0);
        assert_eq!(rank.top_coverage(5), 0.0);
        assert!(rank.top().is_none());
        assert_eq!(rank.overlapping_paths(5), 0);
    }
}
