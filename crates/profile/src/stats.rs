//! Control-flow characterisation (Table I and Figure 4 of the paper).

use std::collections::HashSet;

use needle_ir::cfg::Cfg;
use needle_ir::dom::PostDomTree;
use needle_ir::{BlockId, Function, InstId, Op, Terminator, Value};

use crate::profiler::EdgeProfile;

/// The Table I statistics of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlFlowStats {
    /// *Branch⇒Mem*: average number of memory ops control-dependent on a
    /// conditional branch.
    pub branch_mem: f64,
    /// *Mem⇒Branch*: average number of memory ops a branch condition
    /// (data-)depends on.
    pub mem_branch: f64,
    /// Predication bits required to if-convert the function's acyclic body:
    /// one per non-back-edge conditional branch.
    pub predication_bits: usize,
    /// Number of backward branches (loop back edges).
    pub backward_branches: usize,
    /// Number of conditional branches considered.
    pub cond_branches: usize,
    /// How many post-dominator walks ran out of fuel before reaching
    /// the branch's immediate post-dominator. Non-zero means
    /// [`ControlFlowStats::branch_mem`] undercounts: the walk was cut
    /// short (a malformed or pathological post-dominator tree), not
    /// exhausted. Zero on every well-formed CFG.
    pub walk_truncations: usize,
}

/// Compute Table I statistics for `func`.
pub fn control_flow_stats(func: &Function) -> ControlFlowStats {
    let cfg = Cfg::new(func);
    let pdom = PostDomTree::new(&cfg);
    let back: HashSet<(BlockId, BlockId)> = cfg
        .back_edges()
        .into_iter()
        .map(|e| (e.from, e.to))
        .collect();

    let mut branch_mem_total = 0usize;
    let mut mem_branch_total = 0usize;
    let mut cond_branches = 0usize;
    let mut predication_bits = 0usize;
    let mut walk_truncations = 0usize;

    for bb in func.block_ids() {
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = func.block(bb).term
        else {
            continue;
        };
        cond_branches += 1;
        let is_back = back.contains(&(bb, then_bb)) || back.contains(&(bb, else_bb));
        if !is_back {
            predication_bits += 1;
        }
        let (mem_ops, truncated) = control_dependent_mem_ops(
            func,
            &pdom,
            bb,
            &[then_bb, else_bb],
            &back,
            func.num_blocks() + 1,
        );
        branch_mem_total += mem_ops;
        walk_truncations += truncated;
        mem_branch_total += backward_slice_loads(func, cond);
    }

    let denom = cond_branches.max(1) as f64;
    ControlFlowStats {
        branch_mem: branch_mem_total as f64 / denom,
        mem_branch: mem_branch_total as f64 / denom,
        predication_bits,
        backward_branches: back.len(),
        cond_branches,
        walk_truncations,
    }
}

/// Memory ops in blocks control-dependent on the branch at `bb`
/// (Ferrante-style: for each successor `s`, walk the post-dominator tree
/// from `s` up to — excluding — `ipdom(bb)`).
///
/// `fuel` bounds each upward walk; on a well-formed post-dominator tree
/// `num_blocks + 1` steps always reach the stop node, so running dry
/// means the tree is cyclic or detached. Instead of silently returning
/// a short count, the second return value reports how many walks were
/// truncated so callers can surface the undercount.
fn control_dependent_mem_ops(
    func: &Function,
    pdom: &PostDomTree,
    bb: BlockId,
    succs: &[BlockId],
    back: &HashSet<(BlockId, BlockId)>,
    fuel: usize,
) -> (usize, usize) {
    let stop = pdom.ipdom(bb);
    let mut dep_blocks: HashSet<BlockId> = HashSet::new();
    let mut truncated = 0usize;
    for &s in succs {
        if back.contains(&(bb, s)) {
            continue;
        }
        let mut cur = Some(s);
        let mut fuel = fuel;
        while let Some(x) = cur {
            if Some(x) == stop {
                break;
            }
            if fuel == 0 {
                truncated += 1;
                break;
            }
            fuel -= 1;
            dep_blocks.insert(x);
            cur = pdom.ipdom(x);
        }
    }
    let mem_ops = dep_blocks
        .iter()
        .map(|b| func.block_mem_ops(*b))
        .sum();
    (mem_ops, truncated)
}

/// Number of distinct `Load` instructions in the backward data-dependence
/// slice of `cond`.
fn backward_slice_loads(func: &Function, cond: Value) -> usize {
    let mut seen: HashSet<InstId> = HashSet::new();
    let mut loads = 0usize;
    let mut stack: Vec<Value> = vec![cond];
    while let Some(v) = stack.pop() {
        let Some(id) = v.as_inst() else { continue };
        if !seen.insert(id) {
            continue;
        }
        let inst = func.inst(id);
        if matches!(inst.op, Op::Load) {
            loads += 1;
        }
        for a in &inst.args {
            stack.push(*a);
        }
    }
    loads
}

/// Branch-bias histogram (Figure 4): the fraction of *executed* conditional
/// branches in each bias band.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BiasHistogram {
    /// Branches with max-side bias below 80%.
    pub lt80: f64,
    /// Bias in [80%, 99%).
    pub b80_99: f64,
    /// Bias at or above 99%.
    pub ge99: f64,
    /// Number of executed conditional branches observed.
    pub branches: usize,
}

/// Compute the branch-bias histogram of `func` from its edge profile.
pub fn bias_histogram(func: &Function, profile: &EdgeProfile) -> BiasHistogram {
    let mut h = BiasHistogram::default();
    for bb in func.block_ids() {
        let Terminator::CondBr {
            then_bb, else_bb, ..
        } = func.block(bb).term
        else {
            continue;
        };
        let a = profile.edge(bb, then_bb);
        let b = profile.edge(bb, else_bb);
        let total = a + b;
        if total == 0 {
            continue;
        }
        h.branches += 1;
        let bias = a.max(b) as f64 / total as f64;
        if bias < 0.80 {
            h.lt80 += 1.0;
        } else if bias < 0.99 {
            h.b80_99 += 1.0;
        } else {
            h.ge99 += 1.0;
        }
    }
    if h.branches > 0 {
        let n = h.branches as f64;
        h.lt80 /= n;
        h.b80_99 /= n;
        h.ge99 /= n;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Interp, Memory};
    use needle_ir::{Constant, Module, Type, Value};

    use crate::profiler::EdgeProfiler;

    /// if (load(p) > 0) { store } else { } ; loop over it
    fn mem_branchy() -> Function {
        let mut fb = FunctionBuilder::new("mb", &[Type::Ptr, Type::I64], None);
        let entry = fb.entry();
        let head = fb.block("head");
        let thn = fb.block("then");
        let els = fb.block("else");
        let latch = fb.block("latch");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(1));
        fb.cond_br(c, thn, exit);
        fb.switch_to(thn);
        let addr = fb.gep(fb.arg(0), i, 8);
        let v = fb.load(Type::I64, addr);
        let pos = fb.icmp_sgt(v, Value::int(0));
        fb.cond_br(pos, els, latch);
        fb.switch_to(els);
        let w = fb.add(v, Value::int(1));
        fb.store(w, addr);
        fb.br(latch);
        fb.switch_to(latch);
        let i2 = fb.add(i, Value::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(latch);
        f
    }

    #[test]
    fn stats_capture_branch_memory_interplay() {
        let f = mem_branchy();
        let s = control_flow_stats(&f);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(s.backward_branches, 1);
        // Two cond branches, both forward (the loop latch is an
        // unconditional jump in this CFG, and head's exit edge is forward).
        assert_eq!(s.predication_bits, 2);
        // The `pos` branch condition depends on one load.
        assert!(s.mem_branch > 0.0);
        // The else block's store (+ the load in `thn` depends on head's
        // branch) — some memory is control dependent.
        assert!(s.branch_mem > 0.0);
    }

    #[test]
    fn straightline_function_has_zero_stats() {
        let mut fb = FunctionBuilder::new("s", &[Type::I64], Some(Type::I64));
        let v = fb.add(fb.arg(0), Value::int(1));
        fb.ret(Some(v));
        let f = fb.finish();
        let s = control_flow_stats(&f);
        assert_eq!(
            s,
            ControlFlowStats {
                branch_mem: 0.0,
                mem_branch: 0.0,
                predication_bits: 0,
                backward_branches: 0,
                cond_branches: 0,
                walk_truncations: 0,
            }
        );
    }

    #[test]
    fn bias_histogram_buckets_branches() {
        let f = mem_branchy();
        let mut m = Module::new("t");
        let mut mem = Memory::new();
        // positives at even slots: pos branch is 50/50 → lt80 bucket.
        for i in 0..100 {
            mem.store(i * 8, needle_ir::interp::Val::Int((i % 2) as i64));
        }
        let fid = m.push(f);
        let mut prof = EdgeProfiler::new();
        Interp::new(&m)
            .run(
                fid,
                &[Constant::Ptr(0), Constant::Int(100)],
                &mut mem,
                &mut prof,
            )
            .unwrap();
        let h = bias_histogram(m.func(fid), &prof.profile(fid));
        assert_eq!(h.branches, 2);
        // `pos` is 50/50 → lt80; loop branch is 100/101 ≈ 99% → ge99.
        assert!((h.lt80 - 0.5).abs() < 1e-9);
        assert!(h.ge99 + h.b80_99 > 0.49);
        let sum = h.lt80 + h.b80_99 + h.ge99;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fuel_exhaustion_is_reported_not_silent() {
        // The pdom walk of `mem_branchy`'s `head` branch needs several
        // steps; starve it to one step of fuel and the truncation must
        // surface instead of silently producing a short walk.
        let f = mem_branchy();
        let cfg = needle_ir::cfg::Cfg::new(&f);
        let pdom = needle_ir::dom::PostDomTree::new(&cfg);
        let back: HashSet<(BlockId, BlockId)> = cfg
            .back_edges()
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect();
        let branch = f
            .block_ids()
            .find_map(|bb| match f.block(bb).term {
                needle_ir::Terminator::CondBr {
                    then_bb, else_bb, ..
                } if !back.contains(&(bb, then_bb)) && !back.contains(&(bb, else_bb)) => {
                    Some((bb, then_bb, else_bb))
                }
                _ => None,
            })
            .expect("mem_branchy has a forward conditional branch");
        let (_, starved) = control_dependent_mem_ops(
            &f,
            &pdom,
            branch.0,
            &[branch.1, branch.2],
            &back,
            0,
        );
        assert!(starved > 0, "starved walk must report truncation");
        let (_, full) = control_dependent_mem_ops(
            &f,
            &pdom,
            branch.0,
            &[branch.1, branch.2],
            &back,
            f.num_blocks() + 1,
        );
        assert_eq!(full, 0, "full fuel must complete the walk");
    }

    #[test]
    fn well_formed_cfgs_never_truncate() {
        let s = control_flow_stats(&mem_branchy());
        assert_eq!(s.walk_truncations, 0);
    }

    #[test]
    fn bias_histogram_empty_profile() {
        let f = mem_branchy();
        let h = bias_histogram(&f, &EdgeProfile::default());
        assert_eq!(h.branches, 0);
        assert_eq!(h.lt80 + h.b80_99 + h.ge99, 0.0);
    }
}
