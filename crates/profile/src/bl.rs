//! Ball-Larus path numbering (Ball & Larus, MICRO 1996).
//!
//! The CFG is converted to a DAG by removing loop back edges and adding
//! *fake* edges: one from a virtual ENTRY to each back-edge target, and one
//! from each back-edge source to a virtual EXIT. Every acyclic execution
//! segment then corresponds to exactly one ENTRY→EXIT path in the DAG, and
//! dynamic programming assigns each path a dense id in `0..num_paths`.

use std::collections::HashMap;
use std::fmt;

use needle_ir::cfg::Cfg;
use needle_ir::{BlockId, Function};

/// An edge of the Ball-Larus DAG.
///
/// Virtual ENTRY/EXIT nodes are implicit: `EntryTo(b)` leaves ENTRY,
/// `ToExit(b)` reaches EXIT. `EntryTo(entry_block)` exists always;
/// `EntryTo(t)` for each back-edge target `t`. `ToExit(b)` exists for `Ret`
/// blocks and back-edge sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DagEdge {
    /// ENTRY → block (real function entry, or fake edge to a back-edge
    /// target).
    EntryTo(BlockId),
    /// A real CFG edge that is not a back edge.
    Real(BlockId, BlockId),
    /// block → EXIT (a `Ret` block, or fake edge from a back-edge source).
    ToExit(BlockId),
}

impl fmt::Display for DagEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagEdge::EntryTo(b) => write!(f, "ENTRY->{b}"),
            DagEdge::Real(a, b) => write!(f, "{a}->{b}"),
            DagEdge::ToExit(b) => write!(f, "{b}->EXIT"),
        }
    }
}

/// Errors from numbering construction or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlError {
    /// The number of paths overflowed `u64`.
    TooManyPaths,
    /// A path id outside `0..num_paths` was decoded.
    BadPathId(u64),
    /// A runtime edge was observed that the numbering does not know
    /// (malformed trace or wrong function).
    UnknownEdge(BlockId, BlockId),
}

impl fmt::Display for BlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlError::TooManyPaths => write!(f, "path count overflows u64"),
            BlError::BadPathId(id) => write!(f, "path id {id} out of range"),
            BlError::UnknownEdge(a, b) => write!(f, "edge {a}->{b} unknown to the numbering"),
        }
    }
}

impl std::error::Error for BlError {}

/// The Ball-Larus numbering of one function.
#[derive(Debug, Clone)]
pub struct BlNumbering {
    num_paths: u64,
    /// Edge increment values.
    val: HashMap<DagEdge, u64>,
    /// Ordered outgoing DAG edges per block (ascending `val`).
    succ: Vec<Vec<DagEdge>>,
    /// Ordered outgoing edges of the virtual ENTRY node.
    entry_succ: Vec<DagEdge>,
    /// Back edges removed from the CFG.
    back_edges: Vec<(BlockId, BlockId)>,
    /// Per-path-start cache for the runtime: increment on function entry.
    enter_val: u64,
}

impl BlNumbering {
    /// Build the numbering for `func`.
    ///
    /// # Errors
    /// Fails with [`BlError::TooManyPaths`] when the function has more than
    /// `u64::MAX` acyclic paths.
    pub fn new(func: &Function) -> Result<BlNumbering, BlError> {
        let cfg = Cfg::new(func);
        Self::from_cfg(func, &cfg)
    }

    /// Build the numbering from a precomputed CFG.
    ///
    /// # Errors
    /// Fails with [`BlError::TooManyPaths`] on path-count overflow.
    pub fn from_cfg(func: &Function, cfg: &Cfg) -> Result<BlNumbering, BlError> {
        let n = cfg.len();
        let back: Vec<(BlockId, BlockId)> = cfg
            .back_edges()
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect();
        let is_back = |a: BlockId, b: BlockId| back.contains(&(a, b));

        // DAG adjacency per block (dedup parallel edges).
        let mut succ: Vec<Vec<DagEdge>> = vec![Vec::new(); n];
        let reachable = cfg.reachable();
        for b in func.block_ids() {
            if !reachable[b.index()] {
                continue;
            }
            let mut out = Vec::new();
            for &s in cfg.succs(b) {
                if is_back(b, s) {
                    continue;
                }
                let e = DagEdge::Real(b, s);
                if !out.contains(&e) {
                    out.push(e);
                }
            }
            if back.iter().any(|(src, _)| *src == b) {
                out.push(DagEdge::ToExit(b));
            }
            if cfg.exits().contains(&b) {
                let e = DagEdge::ToExit(b);
                if !out.contains(&e) {
                    out.push(e);
                }
            }
            succ[b.index()] = out;
        }
        // ENTRY successors: real entry first, then fake edges to back-edge
        // targets (sorted, dedup).
        let mut entry_succ = vec![DagEdge::EntryTo(func.entry())];
        let mut targets: Vec<BlockId> = back.iter().map(|(_, t)| *t).collect();
        targets.sort();
        targets.dedup();
        for t in targets {
            let e = DagEdge::EntryTo(t);
            if !entry_succ.contains(&e) {
                entry_succ.push(e);
            }
        }

        // NumPaths by reverse topological order of the DAG (blocks only;
        // EXIT has NumPaths 1). The DAG restricted to real edges is acyclic,
        // so a DFS post-order from each root works; simpler: Kahn-style
        // iteration over real edges.
        let mut order: Vec<BlockId> = Vec::with_capacity(n);
        {
            let mut indeg = vec![0usize; n];
            for edges in succ.iter().take(n) {
                for e in edges {
                    if let DagEdge::Real(_, t) = e {
                        indeg[t.index()] += 1;
                    }
                }
            }
            let mut stack: Vec<BlockId> = (0..n)
                .filter(|b| reachable[*b] && indeg[*b] == 0)
                .map(|b| BlockId(b as u32))
                .collect();
            while let Some(b) = stack.pop() {
                order.push(b);
                for e in &succ[b.index()] {
                    if let DagEdge::Real(_, t) = e {
                        indeg[t.index()] -= 1;
                        if indeg[t.index()] == 0 {
                            stack.push(*t);
                        }
                    }
                }
            }
        }

        let mut num_paths_of: Vec<u64> = vec![0; n];
        let mut val: HashMap<DagEdge, u64> = HashMap::new();
        for &b in order.iter().rev() {
            let mut total: u64 = 0;
            for e in &succ[b.index()] {
                val.insert(*e, total);
                let np = match e {
                    DagEdge::Real(_, t) => num_paths_of[t.index()],
                    DagEdge::ToExit(_) => 1,
                    DagEdge::EntryTo(_) => unreachable!("blocks have no entry edges"),
                };
                total = total.checked_add(np).ok_or(BlError::TooManyPaths)?;
            }
            num_paths_of[b.index()] = total;
        }
        let mut total: u64 = 0;
        for e in &entry_succ {
            val.insert(*e, total);
            let t = match e {
                DagEdge::EntryTo(t) => *t,
                _ => unreachable!(),
            };
            total = total
                .checked_add(num_paths_of[t.index()])
                .ok_or(BlError::TooManyPaths)?;
        }

        let enter_val = val[&DagEdge::EntryTo(func.entry())];
        Ok(BlNumbering {
            num_paths: total,
            val,
            succ,
            entry_succ,
            back_edges: back,
            enter_val,
        })
    }

    /// Total number of acyclic paths (path ids are `0..num_paths`).
    pub fn num_paths(&self) -> u64 {
        self.num_paths
    }

    /// The back edges removed during DAG construction.
    pub fn back_edges(&self) -> &[(BlockId, BlockId)] {
        &self.back_edges
    }

    /// Whether `(from, to)` is a removed back edge.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// The increment applied when execution enters the function.
    pub fn enter_increment(&self) -> u64 {
        self.enter_val
    }

    /// The increment for traversing the real edge `from -> to`.
    ///
    /// # Errors
    /// Fails if the edge is unknown (e.g. it is a back edge).
    pub fn edge_increment(&self, from: BlockId, to: BlockId) -> Result<u64, BlError> {
        self.val
            .get(&DagEdge::Real(from, to))
            .copied()
            .ok_or(BlError::UnknownEdge(from, to))
    }

    /// The increment for ending a path at `block` (fake back-edge exit or a
    /// real `Ret`).
    ///
    /// # Errors
    /// Fails if `block` has no edge to EXIT.
    pub fn exit_increment(&self, block: BlockId) -> Result<u64, BlError> {
        self.val
            .get(&DagEdge::ToExit(block))
            .copied()
            .ok_or(BlError::UnknownEdge(block, block))
    }

    /// The increment for restarting a path at back-edge target `block`.
    ///
    /// # Errors
    /// Fails if `block` is not a back-edge target (no fake ENTRY edge).
    pub fn restart_increment(&self, block: BlockId) -> Result<u64, BlError> {
        self.val
            .get(&DagEdge::EntryTo(block))
            .copied()
            .ok_or(BlError::UnknownEdge(block, block))
    }

    /// Decode a path id into its basic-block sequence.
    ///
    /// # Errors
    /// Fails with [`BlError::BadPathId`] when `id >= num_paths()`.
    pub fn decode(&self, id: u64) -> Result<Vec<BlockId>, BlError> {
        if id >= self.num_paths {
            return Err(BlError::BadPathId(id));
        }
        let mut rem = id;
        // Choose the ENTRY edge: last edge with val <= rem.
        let first = *pick(&self.entry_succ, &self.val, rem);
        rem -= self.val[&first];
        let mut cur = match first {
            DagEdge::EntryTo(b) => b,
            _ => unreachable!(),
        };
        let mut blocks = vec![cur];
        loop {
            let edges = &self.succ[cur.index()];
            debug_assert!(!edges.is_empty(), "DAG path must reach EXIT");
            let e = *pick(edges, &self.val, rem);
            rem -= self.val[&e];
            match e {
                DagEdge::Real(_, t) => {
                    blocks.push(t);
                    cur = t;
                }
                DagEdge::ToExit(_) => {
                    debug_assert_eq!(rem, 0, "leftover id after reaching EXIT");
                    return Ok(blocks);
                }
                DagEdge::EntryTo(_) => unreachable!(),
            }
        }
    }

    /// Encode a block sequence into its path id (inverse of [`decode`]).
    ///
    /// The sequence must be a valid acyclic path: it must start at the
    /// function entry or a back-edge target, follow real non-back edges and
    /// end at a `Ret` block or a back-edge source.
    ///
    /// # Errors
    /// Fails with [`BlError::UnknownEdge`] if the sequence walks an edge the
    /// DAG does not contain.
    ///
    /// [`decode`]: BlNumbering::decode
    pub fn encode(&self, blocks: &[BlockId]) -> Result<u64, BlError> {
        let first = blocks
            .first()
            .copied()
            .ok_or(BlError::BadPathId(u64::MAX))?;
        let mut id = self.restart_increment(first)?;
        for w in blocks.windows(2) {
            id += self.edge_increment(w[0], w[1])?;
        }
        id += self.exit_increment(*blocks.last().expect("nonempty"))?;
        Ok(id)
    }
}

/// Functions with at most this many acyclic paths get a dense counter
/// array (`8 * 65536` = 512 KiB worst case); larger path spaces fall back
/// to a hash map.
const DENSE_PATH_LIMIT: u64 = 1 << 16;

/// Per-function accumulator for Ball-Larus path counters.
///
/// BL path ids are dense (`0..num_paths`), so for the common case the
/// counters are a flat `Vec<u64>` indexed by path id — one add per
/// completed path instead of a hash probe. Functions whose path space is
/// too large to preallocate (or unknown) use a sparse map.
#[derive(Debug, Clone)]
pub enum PathCounts {
    /// `counts[path_id] = completions`; used when `num_paths` is small.
    Dense(Vec<u64>),
    /// Fallback for huge or unknown path spaces.
    Sparse(HashMap<u64, u64>),
}

impl Default for PathCounts {
    fn default() -> PathCounts {
        PathCounts::Sparse(HashMap::new())
    }
}

impl PathCounts {
    /// The right representation for a function with `numbering`'s path
    /// space: dense up to [`DENSE_PATH_LIMIT`] paths, sparse beyond.
    pub fn for_numbering(numbering: &BlNumbering) -> PathCounts {
        if numbering.num_paths() <= DENSE_PATH_LIMIT {
            PathCounts::Dense(vec![0; numbering.num_paths() as usize])
        } else {
            PathCounts::Sparse(HashMap::new())
        }
    }

    /// Record one completion of path `id`. Ids beyond a dense array's
    /// bounds (malformed trace) fall back to growing the array.
    pub fn bump(&mut self, id: u64) {
        match self {
            PathCounts::Dense(v) => {
                let ix = id as usize;
                if v.len() <= ix {
                    v.resize(ix + 1, 0);
                }
                v[ix] += 1;
            }
            PathCounts::Sparse(m) => *m.entry(id).or_insert(0) += 1,
        }
    }

    /// Record `n` completions of path `id` at once (epoch merging).
    pub fn add(&mut self, id: u64, n: u64) {
        if n == 0 {
            return;
        }
        match self {
            PathCounts::Dense(v) => {
                let ix = id as usize;
                if v.len() <= ix {
                    v.resize(ix + 1, 0);
                }
                v[ix] += n;
            }
            PathCounts::Sparse(m) => *m.entry(id).or_insert(0) += n,
        }
    }

    /// The completion count of path `id` (0 if never completed).
    pub fn get(&self, id: u64) -> u64 {
        match self {
            PathCounts::Dense(v) => v.get(id as usize).copied().unwrap_or(0),
            PathCounts::Sparse(m) => m.get(&id).copied().unwrap_or(0),
        }
    }

    /// Total completed paths.
    pub fn total(&self) -> u64 {
        match self {
            PathCounts::Dense(v) => v.iter().sum(),
            PathCounts::Sparse(m) => m.values().sum(),
        }
    }

    /// Number of distinct executed paths.
    pub fn distinct(&self) -> usize {
        match self {
            PathCounts::Dense(v) => v.iter().filter(|c| **c != 0).count(),
            PathCounts::Sparse(m) => m.values().filter(|c| **c != 0).count(),
        }
    }

    /// Whether no path ever completed.
    pub fn is_empty(&self) -> bool {
        self.distinct() == 0
    }

    /// `(path id, count)` pairs for every executed path (count > 0).
    pub fn iter(&self) -> PathCountsIter<'_> {
        PathCountsIter {
            inner: match self {
                PathCounts::Dense(v) => IterInner::Dense(v.iter().enumerate()),
                PathCounts::Sparse(m) => IterInner::Sparse(m.iter()),
            },
        }
    }

    /// Ids of every executed path.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl<'a> IntoIterator for &'a PathCounts {
    type Item = (u64, u64);
    type IntoIter = PathCountsIter<'a>;
    fn into_iter(self) -> PathCountsIter<'a> {
        self.iter()
    }
}

/// Iterator over `(path id, count)` pairs of a [`PathCounts`].
#[derive(Debug)]
pub struct PathCountsIter<'a> {
    inner: IterInner<'a>,
}

#[derive(Debug)]
enum IterInner<'a> {
    Dense(std::iter::Enumerate<std::slice::Iter<'a, u64>>),
    Sparse(std::collections::hash_map::Iter<'a, u64, u64>),
}

impl Iterator for PathCountsIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        match &mut self.inner {
            IterInner::Dense(it) => it.find(|(_, c)| **c != 0).map(|(i, c)| (i as u64, *c)),
            IterInner::Sparse(it) => it.find(|(_, c)| **c != 0).map(|(id, c)| (*id, *c)),
        }
    }
}

/// Last edge in `edges` (ascending by val) whose val is `<= rem`.
fn pick<'e>(edges: &'e [DagEdge], val: &HashMap<DagEdge, u64>, rem: u64) -> &'e DagEdge {
    edges
        .iter()
        .rev()
        .find(|e| val[*e] <= rem)
        .expect("id in range implies a feasible edge")
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::{Type, Value};

    /// The classic BL example: entry -> {b|c} -> d -> {e|f} -> exit.
    fn double_diamond() -> Function {
        let mut fb = FunctionBuilder::new("dd", &[Type::I64], None);
        let entry = fb.entry();
        let b = fb.block("b");
        let c = fb.block("c");
        let d = fb.block("d");
        let e = fb.block("e");
        let f = fb.block("f");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        let c1 = fb.icmp_sgt(fb.arg(0), Value::int(0));
        fb.cond_br(c1, b, c);
        fb.switch_to(b);
        fb.br(d);
        fb.switch_to(c);
        fb.br(d);
        fb.switch_to(d);
        let c2 = fb.icmp_sgt(fb.arg(0), Value::int(10));
        fb.cond_br(c2, e, f);
        fb.switch_to(e);
        fb.br(exit);
        fb.switch_to(f);
        fb.br(exit);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    fn looped() -> Function {
        // entry -> head; head -> {body|exit}; body -> head (back edge)
        let mut fb = FunctionBuilder::new("loop", &[Type::I64], None);
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let c = fb.icmp_slt(fb.arg(0), Value::int(4));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn double_diamond_has_four_paths() {
        let f = double_diamond();
        let bl = BlNumbering::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 4);
        // Every id decodes to a distinct path which re-encodes to itself.
        let mut seen = Vec::new();
        for id in 0..4 {
            let blocks = bl.decode(id).unwrap();
            assert_eq!(blocks.len(), 5); // entry, {b|c}, d, {e|f}, exit
            assert_eq!(blocks[0], BlockId(0));
            assert_eq!(*blocks.last().unwrap(), BlockId(6));
            assert!(!seen.contains(&blocks));
            assert_eq!(bl.encode(&blocks).unwrap(), id);
            seen.push(blocks);
        }
        assert!(bl.decode(4).is_err());
    }

    #[test]
    fn loop_function_paths() {
        let f = looped();
        let bl = BlNumbering::new(&f).unwrap();
        // Paths: entry-head-body (fake exit), entry-head-exit,
        //        head-body (restart after back edge), head-exit (restart).
        assert_eq!(bl.num_paths(), 4);
        assert_eq!(bl.back_edges(), &[(BlockId(2), BlockId(1))]);
        assert!(bl.is_back_edge(BlockId(2), BlockId(1)));
        assert!(!bl.is_back_edge(BlockId(1), BlockId(2)));
        // All ids round-trip.
        for id in 0..bl.num_paths() {
            let blocks = bl.decode(id).unwrap();
            assert_eq!(bl.encode(&blocks).unwrap(), id);
        }
        // The restart increment for the loop head is a valid operation.
        bl.restart_increment(BlockId(1)).unwrap();
        // The loop body is a back-edge source, so it can end a path.
        bl.exit_increment(BlockId(2)).unwrap();
        // The loop exit ends paths via its Ret.
        bl.exit_increment(BlockId(3)).unwrap();
        // entry cannot end a path
        assert!(bl.exit_increment(BlockId(0)).is_err());
        // body is not a back-edge target
        assert!(bl.restart_increment(BlockId(2)).is_err());
        // the back edge has no increment
        assert!(bl.edge_increment(BlockId(2), BlockId(1)).is_err());
    }

    #[test]
    fn single_block_function() {
        let mut fb = FunctionBuilder::new("one", &[], None);
        fb.ret(None);
        let f = fb.finish();
        let bl = BlNumbering::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 1);
        assert_eq!(bl.decode(0).unwrap(), vec![BlockId(0)]);
        assert_eq!(bl.encode(&[BlockId(0)]).unwrap(), 0);
    }

    #[test]
    fn ids_are_dense_and_distinct() {
        let f = double_diamond();
        let bl = BlNumbering::new(&f).unwrap();
        let mut ids: Vec<u64> = (0..bl.num_paths())
            .map(|id| bl.encode(&bl.decode(id).unwrap()).unwrap())
            .collect();
        ids.sort();
        assert_eq!(ids, (0..bl.num_paths()).collect::<Vec<_>>());
    }
}
