//! `needle-profile` — dynamic profiling for the Needle pipeline.
//!
//! Implements the profiling half of the paper (§III):
//!
//! * [`bl`] — Ball-Larus path numbering: back-edge removal, DAG path
//!   enumeration with dynamic programming, dense path ids, and id ↔ block
//!   sequence encode/decode;
//! * [`profiler`] — [`interp::TraceSink`](needle_ir::interp::TraceSink)
//!   implementations that collect path profiles, path traces (for §IV-A
//!   target expansion) and edge/block profiles online while a workload runs
//!   on the interpreter;
//! * [`rank`] — the path-weight metric `Pwt = freq × ops` and function
//!   weight `Fwt` used to rank acceleration candidates;
//! * [`stats`] — the control-flow characterisation of Table I and Figure 4
//!   (branch↔memory dependences, predication bits, backward branches,
//!   branch-bias histograms).

pub mod bl;
pub mod profiler;
pub mod rank;
pub mod sampling;
pub mod stats;
pub mod streaming;

pub use bl::{BlError, BlNumbering, DagEdge};
pub use profiler::{EdgeProfile, EdgeProfiler, PathProfile, PathProfiler};
pub use rank::{rank_functions, rank_paths, FunctionRank, RankedPath};
pub use sampling::SamplingProfiler;
pub use stats::{bias_histogram, control_flow_stats, BiasHistogram, ControlFlowStats};
pub use streaming::{build_numberings, EpochProfile, SharedNumberings, StreamingProfiler};
