//! Sampling-based profiling — the §III-A comparison baseline.
//!
//! The paper validates the frequency-based `Pwt` metric against Linux
//! `pprof` samples (1500 samples/s) and finds sampling drifts by ±10–15%
//! on a third of the suite, "reaffirming our decision to use a frequency
//! based metric". This module reproduces that comparison: a sampling sink
//! that records every N-th dynamic instruction's basic block, plus the
//! block-share estimate of a path's weight that a sampling profiler would
//! report.

use std::collections::HashMap;

use needle_ir::interp::TraceSink;
use needle_ir::{BlockId, FuncId, Module};

use crate::rank::RankedPath;

/// A periodic-sampling profiler: every `period`-th dynamic instruction
/// produces one sample attributed to its basic block.
#[derive(Debug)]
pub struct SamplingProfiler<'m> {
    module: &'m Module,
    period: u64,
    countdown: u64,
    /// `(func, block) -> samples`.
    pub samples: HashMap<(FuncId, BlockId), u64>,
    /// Total samples taken.
    pub total: u64,
}

impl<'m> SamplingProfiler<'m> {
    /// A profiler sampling once every `period` dynamic instructions.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(module: &'m Module, period: u64) -> SamplingProfiler<'m> {
        assert!(period > 0, "sampling period must be positive");
        SamplingProfiler {
            module,
            period,
            countdown: period,
            samples: HashMap::new(),
            total: 0,
        }
    }

    /// Samples attributed to `func` (all blocks).
    pub fn function_samples(&self, func: FuncId) -> u64 {
        self.samples
            .iter()
            .filter(|((f, _), _)| *f == func)
            .map(|(_, n)| *n)
            .sum()
    }

    /// The sampled weight share of `path` within `func`: the fraction of
    /// the function's samples landing in the path's blocks. Overlapping
    /// paths share blocks, so this estimate is systematically biased — the
    /// effect §III-A measures.
    pub fn path_share(&self, func: FuncId, path: &RankedPath) -> f64 {
        let f_total = self.function_samples(func);
        if f_total == 0 {
            return 0.0;
        }
        let on_path: u64 = path
            .blocks
            .iter()
            .map(|b| self.samples.get(&(func, *b)).copied().unwrap_or(0))
            .sum();
        on_path as f64 / f_total as f64
    }
}

impl TraceSink for SamplingProfiler<'_> {
    fn block(&mut self, func: FuncId, bb: BlockId) {
        // Advance the instruction clock by this block's size (φs are
        // renaming artifacts, not dynamic instructions) plus the
        // terminator; fire a sample into this block whenever the period
        // elapses within it.
        let f = self.module.func(func);
        let len = f
            .block(bb)
            .insts
            .iter()
            .filter(|i| !f.inst(**i).is_phi())
            .count() as u64
            + 1;
        let mut remaining = len;
        while remaining >= self.countdown {
            remaining -= self.countdown;
            self.countdown = self.period;
            *self.samples.entry((func, bb)).or_insert(0) += 1;
            self.total += 1;
        }
        self.countdown -= remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Interp, Memory};
    use needle_ir::{Constant, Type, Value};

    fn loopy() -> (Module, FuncId) {
        let mut fb = FunctionBuilder::new("l", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, Value::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let a = fb.mul(i, Value::int(3));
        let b = fb.add(a, Value::int(1));
        let _ = fb.xor(b, i);
        let i2 = fb.add(i, Value::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(body);
        let mut m = Module::new("t");
        let id = m.push(f);
        (m, id)
    }

    #[test]
    fn sample_counts_track_dynamic_instructions() {
        let (m, f) = loopy();
        let mut prof = SamplingProfiler::new(&m, 10);
        let mut mem = Memory::new();
        let interp = Interp::new(&m);
        interp
            .run(f, &[Constant::Int(500)], &mut mem, &mut prof)
            .unwrap();
        let steps = interp.steps();
        let expect = steps / 10;
        let got = prof.total;
        // Block-granular attribution rounds at block boundaries.
        assert!(
            (got as i64 - expect as i64).unsigned_abs() <= steps / 100 + 2,
            "expected ≈{expect}, got {got}"
        );
        // The body (5 insts + term) collects more samples than the head (2+1).
        let body = prof.samples[&(f, BlockId(2))];
        let head = prof.samples[&(f, BlockId(1))];
        assert!(body > head);
    }

    #[test]
    fn coarse_periods_sample_rarely() {
        let (m, f) = loopy();
        let mut prof = SamplingProfiler::new(&m, 1_000_000);
        let mut mem = Memory::new();
        Interp::new(&m)
            .run(f, &[Constant::Int(100)], &mut mem, &mut prof)
            .unwrap();
        assert_eq!(prof.total, 0);
        assert_eq!(prof.function_samples(f), 0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let (m, _) = loopy();
        SamplingProfiler::new(&m, 0);
    }
}
