//! `needle` — the command-line front end of the reproduction, mirroring
//! the tool the paper released ("NEEDLE is automated … released as free
//! and open source software").
//!
//! ```text
//! needle list
//! needle analyze <workload>
//! needle offload <workload> [--path] [--oracle] [--expand N]
//! needle print-ir <workload>
//! needle run-ir <file> [args...]
//! ```

use std::process::ExitCode;

use needle::{
    analyze, audit_ledger, certify_workload, peek_journal, run_adaptive_soak, run_shard_soak,
    run_soak, run_supervised, simulate_offload, storm_scenario, AdaptiveSoakConfig,
    CampaignOptions, CampaignReport, CampaignUnit, CertStats, ChaosConfig, GovernorConfig,
    NeedleConfig, PredictorKind, Request, ServeConfig, Service, ShardServeConfig, ShardSoakConfig,
    ShardedService, SoakConfig, SupervisorConfig, UnitKind, UnitPayload, VerdictJournal,
    VerifyPolicy,
};
use needle_frames::build_frame;
use needle_ir::interp::{Interp, Memory, NullSink};
use needle_ir::print::{function_to_string, module_to_string};
use needle_ir::Constant;
use needle_regions::path::PathRegion;
use needle_regions::path_tree::build_path_trees;

const USAGE: &str = "\
needle — profile-guided extraction of accelerator offload regions (HPCA'17)

USAGE:
  needle list
      List the 29 synthetic suite workloads.
  needle analyze <workload>
      Profile a workload: hot paths, Braids, baselines, statistics.
  needle offload <workload> [--path] [--oracle]
      Co-simulate offloading the top Braid (default) or top BL-path,
      with the history predictor (default) or the oracle.
  needle suite [--workloads a,b,c] [--path] [--oracle] [--pathological]
               [supervisor flags]
      Supervised whole-suite sweep: run every workload's full chain
      (profile → rank → region → frame → offload) on a panic-isolated
      worker pool with per-unit deadlines and degrading retries. A
      panicking or runaway workload becomes a per-unit outcome, not a
      dead campaign, so a completed campaign exits 0 even with failed
      units. --pathological appends probe units (a panicking unit and
      the runaway 999.loop workload) to demonstrate isolation.
  needle resume --journal PATH [supervisor flags]
      Resume a journaled campaign: completed units are replayed from
      the journal, in-flight and unstarted ones re-run.
  needle chaos [--seed N] [--faults M] [--workloads a,b,c] [--corruption]
               [--no-storm] [supervisor flags]
      Seeded fault-injection campaign, one supervised unit per
      workload: inject ~M faults split across workloads, attack the
      top braid and path of each, differentially verify every
      invocation, then (unless --no-storm) force an abort storm and
      check the offloader degrades to host-only execution. Exits
      non-zero on any divergence, missed corruption, failed unit, or
      storm that fails to trip.

  needle fuzz [--seed N] [--iters K] [--minimize] [--repro-dir DIR]
              [supervisor flags]
      Differential fuzzing: seeded verifier-clean modules (plus mutated
      suite workloads) run through the flat engine, the reference
      walker, and — where a region is extractable — the frame
      build/exec/rollback path, comparing results, step counts, event
      streams, final memory and error attribution under swept StepLimit
      and memory-governor caps. Deterministic in --seed (decimal or
      0x-hex). With --minimize, failures are shrunk and written to
      --repro-dir (default tests/repros) as .needle + .case.txt pairs.
      Exits non-zero on any divergence.

  Supervisor flags (suite / resume / chaos / fuzz):
      --workers N        worker threads (0 = auto)
      --deadline-ms MS   per-attempt wall-clock deadline
      --retries N        attempts per unit before failed-with-cause
      --journal PATH     append-only JSONL checkpoint journal
      --resume           resume from --journal instead of starting over

  needle serve [--workers N] [--requests N] [--shards N] [--adaptive]
      Demo of the resident execution service: start the worker pool,
      drive a short mixed request stream through admission control
      (per-request fuel, page caps, deadlines), then drain gracefully
      and print the metrics snapshot — counters, per-function circuit
      breaker state, and the latency histogram. With --shards N the
      stream runs through the supervised multi-shard router instead:
      requests hash to shard-private worker pools and the report adds
      per-shard rows plus router/failover counters. --adaptive arms the
      offload governor: sampled path profiles re-rank regions per epoch
      and the report adds the governor counters and timeline.
  needle soak [--seed N] [--requests N] [--no-chaos] [--workers N]
      Seeded soak of the execution service. With chaos (default) the
      driver injects worker panics, frame guard failures, and deadline
      storms while verifying that every accepted request is answered
      exactly once (`accepted == completed + failed + shed`), that a
      circuit breaker both trips and recovers, and that shutdown sheds
      rather than loses the queued tail. Deterministic in --seed;
      exits non-zero on any invariant violation.
  needle soak --shard-chaos [--seed N] [--requests N] [--shards N]
              [--workers N] [--ledger PATH]
      Multi-shard chaos soak: the seeded stream rides over seeded
      shard kills (crash-style, in-flight work orphaned), a wedged
      worker the watchdog must detect and restart, and a graceful
      rebalance mid-burst. Failover re-routes orphaned requests with
      jittered backoff; exactly-once is verified three independent
      ways (driver ledger, service counters, and — with --ledger — an
      offline replay of the durable dedup journal). Deterministic in
      --seed; exits non-zero on any violation.
  needle soak --adaptive [--seed N] [--requests N] [--shards N]
              [--workers N] [--out PATH] [--verify-policy P]
              [--inject-miscompile EPOCH]
      Phase-shift soak of the adaptive offload governor: the request
      stream promotes a hot path, flips the branch bias so a different
      path dominates (forcing a live region hot-swap with zero drain),
      storms the guards until the breaker-informed re-ranker demotes
      the aborting region, then recovers. An injected re-ranker panic
      must be absorbed by pinning the last-known-good region table.
      With --shards N the stream runs through the multi-shard router.
      --out writes the report (counters + governor timeline) as JSON.
      --verify-policy picks the publish gate (differential,
      prefer-symbolic, require-proof); under require-proof only
      symbolically proved frames go live. --inject-miscompile EPOCH
      miscompiles the first frame built at or after that epoch (a
      dropped store) — the cert gate must refuse it and keep the
      incumbent serving, and the soak verdict checks that it did.
      Deterministic in --seed; exits non-zero on any violation.
  needle loadgen [--scenario S|all] [--seed N] [--shards N] [--workers N]
                 [--no-adaptive-admission] [--out PATH] [--check]
      Deterministic open-loop load generation against a virtual-time
      simulation of the hardened serving stack (EDF queue + expired
      sweep, AIMD adaptive admission, brownout ladder, metastable
      detector + shed pulse). Arrivals follow the scenario curve
      (steady | diurnal | burst | adversarial | retry-storm) regardless
      of service health; clients retry under per-client budgets with
      jittered exponential backoff, and the retry-storm scenario adds a
      misbehaving-client population with near-zero backoff. retry-storm
      always runs the hardened and baseline (FIFO + queue-full only)
      models side by side; other scenarios honour
      --no-adaptive-admission. Reports offered load, goodput, the shed
      breakdown (queue-full / throttled / unmeetable), and exact
      p50/p99/p999 latency per phase. Same seed → identical report
      (modulo the generated_unix_ms stamp). --out writes the
      needle-report/v1 JSON artifact; --check enforces the overload
      gates (steady p999 ceiling; retry-storm goodput floor, detector
      fire + recover, post-storm p99 recovery, and the
      hardened-vs-baseline goodput gap) and exits non-zero on failure.
  needle audit <journal>
      Offline exactly-once audit of a durable dedup journal written by
      `soak --shard-chaos --ledger PATH`: replays the journal, checks
      every accepted request resolved exactly once, and prints the
      verdict. Exits non-zero if the ledger shows any violation.
  needle certify <workload|all> [--top N] [--cache PATH] [--json PATH]
      Symbolically certify the workload's hottest frames: lower the top
      N executed paths (default 3) to frames and prove each equivalent
      to its source region over ALL live-in values with the in-house
      bit-vector checker — no external solver. Prints per-frame
      verdicts (proved / refuted / timeout / unsupported) with solver
      stats. --cache keeps a durable verdict journal keyed by frame
      fingerprint, so a second run answers from the cache; --json
      writes the full report for the benchmark artifact. Exits non-zero
      if any frame is refuted.

  needle print-ir <workload>
      Print the workload's IR in textual form.
  needle run-ir <file> [intarg...]
      Parse a textual IR module and run its first function.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("analyze") => with_workload(&args, cmd_analyze),
        Some("offload") => with_workload(&args, |name| cmd_offload(name, &args)),
        Some("suite") => cmd_suite(&args),
        Some("resume") => cmd_resume(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("fuzz") => cmd_fuzz(&args),
        Some("serve") => cmd_serve(&args),
        Some("soak") => cmd_soak(&args),
        Some("loadgen") => cmd_loadgen(&args),
        Some("audit") => cmd_audit(&args),
        Some("certify") => cmd_certify(&args),
        Some("print-ir") => with_workload(&args, cmd_print_ir),
        Some("run-ir") => cmd_run_ir(&args),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn with_workload(args: &[String], f: impl FnOnce(&str) -> CliResult) -> CliResult {
    let name = args.get(1).ok_or("missing workload name (try `needle list`)")?;
    f(name)
}

fn cmd_list() -> CliResult {
    println!("{:<22} {:>10}", "workload", "suite");
    for s in needle_workloads::specs() {
        println!("{:<22} {:>10}", s.name, s.suite.to_string());
    }
    Ok(())
}

fn load(name: &str) -> Result<needle_workloads::Workload, Box<dyn std::error::Error>> {
    needle_workloads::by_name(name)
        .ok_or_else(|| format!("unknown workload {name:?} (try `needle list`)").into())
}

fn cmd_analyze(name: &str) -> CliResult {
    let w = load(name)?;
    let cfg = NeedleConfig::default();
    let a = analyze(&w.module, w.func, &w.args, &w.memory, &cfg)?;
    let f = a.module.func(a.func);
    println!("workload {name} ({}), hot function @{}", w.suite, f.name);
    println!(
        "  {} blocks, {} instructions, {} conditional branches, {} loops",
        f.num_blocks(),
        f.num_insts(),
        f.num_cond_branches(),
        a.stats.backward_branches
    );
    println!(
        "  inlined {} call sites; {} distinct paths executed ({} possible)",
        a.inlined_calls,
        a.rank.executed_paths(),
        a.numbering.num_paths()
    );
    println!("\ntop paths by Pwt:");
    for (i, p) in a.rank.paths.iter().take(5).enumerate() {
        println!(
            "  #{i}: id {:>6}  freq {:>8}  ops {:>4}  branches {:>2}  coverage {:>5.1}%",
            p.id,
            p.freq,
            p.ops,
            p.branches,
            p.coverage(a.rank.fwt) * 100.0
        );
    }
    println!("\ntop braids:");
    for (i, b) in a.braids.iter().take(3).enumerate() {
        println!(
            "  #{i}: merges {:>3} paths  ins {:>5}  guards {}  IFs {}  coverage {:>5.1}%",
            b.num_paths(),
            b.region.num_insts(f),
            b.region.guard_branches(f).len(),
            b.region.internal_ifs(f).len(),
            b.coverage(a.rank.fwt) * 100.0
        );
    }
    let trees = build_path_trees(f, &a.rank, 64);
    if let Some(t) = trees.first() {
        println!(
            "\n(top path-tree would merge {} paths with {} live-out sets)",
            t.num_paths(),
            t.live_out_sets()
        );
    }
    println!(
        "\nbaselines: superblock {} blocks (feasible: {}, hottest: {}); \
         hyperblock {} blocks, {:.0}% cold ops",
        a.superblock.blocks.len(),
        a.superblock_feasible,
        a.superblock_hottest,
        a.hyperblock.blocks.len(),
        a.hyperblock_cold_fraction * 100.0
    );
    if let Ok(frame) = build_frame(f, &a.braids[0].region) {
        println!(
            "\ntop braid frame: {} ops ({} mem, {} fp), {} guards, {} φ cancelled, \
             undo log {}, live {} in / {} out",
            frame.num_ops(),
            frame.num_mem_ops(),
            frame.num_float_ops(),
            frame.guards.len(),
            frame.phis_cancelled,
            frame.undo_log_size,
            frame.live_ins.len(),
            frame.live_outs.len()
        );
    }
    Ok(())
}

fn cmd_offload(name: &str, args: &[String]) -> CliResult {
    let use_path = args.iter().any(|a| a == "--path");
    let kind = if args.iter().any(|a| a == "--oracle") {
        PredictorKind::Oracle
    } else {
        PredictorKind::History
    };
    let w = load(name)?;
    let cfg = NeedleConfig::default();
    let a = analyze(&w.module, w.func, &w.args, &w.memory, &cfg)?;
    let region = if use_path {
        PathRegion::from_rank(&a.rank, 0)
            .ok_or("no executed paths")?
            .region
    } else {
        a.braids.first().ok_or("no braids formed")?.region.clone()
    };
    let report = simulate_offload(&a.module, a.func, &w.args, &w.memory, &region, kind, &cfg)?;
    println!(
        "{name}: {} region, {:?} predictor",
        if use_path { "top-path" } else { "top-braid" },
        kind
    );
    println!("{report}");
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse the shared supervisor policy flags.
fn sup_from_flags(args: &[String]) -> Result<SupervisorConfig, Box<dyn std::error::Error>> {
    let mut sup = SupervisorConfig::default();
    if let Some(s) = flag_value(args, "--workers") {
        sup.workers = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--deadline-ms") {
        sup.deadline_ms = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--retries") {
        sup.max_attempts = s.parse()?;
    }
    Ok(sup)
}

/// Parse the shared journal/resume flags.
fn opts_from_flags(args: &[String]) -> CampaignOptions {
    CampaignOptions {
        journal: flag_value(args, "--journal").map(std::path::PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
        kill_after_records: None,
    }
}

fn cmd_suite(args: &[String]) -> CliResult {
    let path = args.iter().any(|a| a == "--path");
    let oracle = args.iter().any(|a| a == "--oracle");
    let names: Vec<String> = match flag_value(args, "--workloads") {
        Some(s) => s.split(',').map(str::to_string).collect(),
        None => needle_workloads::specs().iter().map(|s| s.name.to_string()).collect(),
    };
    let mut units: Vec<CampaignUnit> = names
        .into_iter()
        .map(|w| CampaignUnit {
            workload: w,
            kind: UnitKind::Offload { path, oracle },
        })
        .collect();
    if args.iter().any(|a| a == "--pathological") {
        units.push(CampaignUnit {
            workload: "999.panic".into(),
            kind: UnitKind::PanicProbe,
        });
        units.push(CampaignUnit {
            workload: "999.loop".into(),
            kind: UnitKind::Offload { path, oracle },
        });
    }
    let report = run_supervised(
        units,
        &NeedleConfig::default(),
        &sup_from_flags(args)?,
        &opts_from_flags(args),
    )?;
    println!("{report}");
    Ok(())
}

fn cmd_resume(args: &[String]) -> CliResult {
    let journal = flag_value(args, "--journal")
        .ok_or("resume needs --journal PATH")?
        .to_string();
    let (_, mut sup) = peek_journal(std::path::Path::new(&journal))?;
    // Flag overrides beat the journaled policy.
    if let Some(s) = flag_value(args, "--workers") {
        sup.workers = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--deadline-ms") {
        sup.deadline_ms = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--retries") {
        sup.max_attempts = s.parse()?;
    }
    let opts = CampaignOptions {
        journal: Some(std::path::PathBuf::from(journal)),
        resume: true,
        kill_after_records: None,
    };
    let report = run_supervised(vec![], &NeedleConfig::default(), &sup, &opts)?;
    println!("{report}");
    Ok(())
}

/// Is the aggregated chaos campaign clean? Mirrors
/// `ChaosReport::is_clean`, unit by unit.
fn chaos_units_clean(report: &CampaignReport) -> bool {
    report.units.iter().all(|u| {
        u.outcome.succeeded()
            && match &u.payload {
                Some(UnitPayload::Chaos {
                    expected_corruptions,
                    detected_corruptions,
                    unexpected_divergences,
                    errors,
                    ..
                }) => {
                    detected_corruptions == expected_corruptions
                        && *unexpected_divergences == 0
                        && *errors == 0
                }
                _ => false,
            }
    })
}

/// `--seed` accepts decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, Box<dyn std::error::Error>> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => Ok(u64::from_str_radix(hex, 16)?),
        None => Ok(s.parse()?),
    }
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let seed = match flag_value(args, "--seed") {
        Some(s) => parse_seed(s)?,
        None => 0,
    };
    let iters: u64 = match flag_value(args, "--iters") {
        Some(s) => s.parse()?,
        None => 1000,
    };
    let minimize = args.iter().any(|a| a == "--minimize");
    let repro_dir = flag_value(args, "--repro-dir").unwrap_or("tests/repros");

    // Shard into supervised units; each shard keeps its *global* start
    // index, so the case stream is identical however the campaign is
    // sharded, resumed, or degraded.
    const SHARD: u64 = 500;
    let mut units = Vec::new();
    let mut start = 0;
    while start < iters {
        let n = SHARD.min(iters - start);
        units.push(CampaignUnit {
            workload: format!("fuzz@{start}"),
            kind: UnitKind::Fuzz {
                seed,
                start,
                iters: n,
                minimize,
                repro_dir: if minimize {
                    Some(repro_dir.to_string())
                } else {
                    None
                },
            },
        });
        start += n;
    }
    let report = run_supervised(
        units,
        &NeedleConfig::default(),
        &sup_from_flags(args)?,
        &opts_from_flags(args),
    )?;
    println!("{report}");

    let mut failures = 0u64;
    let mut broken_units = 0u64;
    for u in &report.units {
        if !u.outcome.succeeded() {
            broken_units += 1;
            continue;
        }
        if let Some(UnitPayload::Fuzz {
            failures: f,
            signatures,
            ..
        }) = &u.payload
        {
            if *f > 0 {
                failures += f;
                println!("unit {}: {f} failure(s) [{signatures}]", u.unit.workload);
            }
        }
    }
    if failures > 0 || broken_units > 0 {
        return Err(format!(
            "fuzzing found {failures} divergence(s), {broken_units} unit(s) failed to run{}",
            if minimize {
                format!("; minimized repros under {repro_dir}")
            } else {
                "; re-run with --minimize for shrunk repros".to_string()
            }
        )
        .into());
    }
    println!("fuzz campaign clean: {iters} iterations (seed {seed:#x}), no divergence");
    Ok(())
}

fn cmd_chaos(args: &[String]) -> CliResult {
    let mut chaos = ChaosConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        chaos.seed = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--faults") {
        chaos.faults = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--workloads") {
        chaos.workloads = s.split(',').map(str::to_string).collect();
    }
    chaos.include_corruption = args.iter().any(|a| a == "--corruption");
    let cfg = NeedleConfig::default();

    // One supervised unit per workload; the fault budget splits across
    // them so `--faults` keeps its campaign-wide meaning.
    if chaos.workloads.is_empty() {
        return Err("no workloads given".into());
    }
    let per_unit_faults = (chaos.faults / chaos.workloads.len() as u64).max(1);
    let units: Vec<CampaignUnit> = chaos
        .workloads
        .iter()
        .map(|w| CampaignUnit {
            workload: w.clone(),
            kind: UnitKind::Chaos {
                seed: chaos.seed,
                faults: per_unit_faults,
                include_corruption: chaos.include_corruption,
                fault_rate: chaos.fault_rate,
            },
        })
        .collect();
    let report = run_supervised(units, &cfg, &sup_from_flags(args)?, &opts_from_flags(args))?;
    println!("{report}");
    let mut failed = !chaos_units_clean(&report);

    if !args.iter().any(|a| a == "--no-storm") {
        let target = chaos
            .workloads
            .first()
            .ok_or("no workloads given")?
            .clone();
        let mut storm_cfg = cfg;
        storm_cfg.storm.threshold = 4;
        storm_cfg.storm.cooldown = 8;
        storm_cfg.storm.retry_budget = 2;
        println!("\nabort-storm scenario on {target} (every invocation rolls back):");
        let r = storm_scenario(&target, chaos.seed, &storm_cfg)?;
        println!("{r}");
        if r.storms == 0 || r.fallbacks == 0 {
            println!("storm FAILED to trip blacklisting");
            failed = true;
        } else {
            println!(
                "storm tripped {} time(s); {} opportunities degraded to host-only",
                r.storms, r.fallbacks
            );
        }
    }
    if failed {
        return Err("chaos campaign failed".into());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut cfg = ServeConfig::default();
    if let Some(s) = flag_value(args, "--workers") {
        cfg.workers = s.parse()?;
    }
    if args.iter().any(|a| a == "--adaptive") {
        let mut g = GovernorConfig::default();
        if let Some(s) = flag_value(args, "--verify-policy") {
            g.verify = s.parse::<VerifyPolicy>()?;
        }
        cfg.adaptive = Some(g);
    }
    let requests: u64 = match flag_value(args, "--requests") {
        Some(s) => s.parse()?,
        None => 64,
    };
    if let Some(s) = flag_value(args, "--shards") {
        let mut scfg = ShardServeConfig::default();
        scfg.policy.shards = s.parse()?;
        scfg.serve = cfg;
        return serve_sharded_demo(scfg, requests);
    }
    let svc = Service::start(cfg)?;
    let (tx, rx) = std::sync::mpsc::channel();
    let mut accepted = 0u64;
    let mut answered = 0u64;
    for id in 0..requests {
        // A small representative mix: plain completions, a fuel-starved
        // request, a page-capped request, and a deadline-storm victim.
        let mut req = match id % 8 {
            0..=4 => Request::new(id, "svc.sum"),
            5 => {
                let mut r = Request::new(id, "svc.sum");
                r.fuel = 16;
                r
            }
            6 => {
                let mut r = Request::new(id, "svc.mem");
                r.max_pages = 3;
                r
            }
            _ => Request::new(id, "999.loop"),
        };
        if req.workload == "999.loop" {
            req.deadline_ms = 10;
            req.fuel = u64::MAX / 4;
        }
        if svc.submit(req, &tx).is_ok() {
            accepted += 1;
        }
        // Drain as we go so the bounded queue never becomes the story.
        while rx.try_recv().is_ok() {
            answered += 1;
        }
    }
    // Wait out the in-flight tail before draining, so the demo shows
    // executions rather than a shutdown full of shed requests.
    while answered < accepted {
        match rx.recv_timeout(std::time::Duration::from_secs(30)) {
            Ok(_) => answered += 1,
            Err(_) => break,
        }
    }
    let m = svc.shutdown();
    println!("served {accepted} accepted of {requests} offered\n{m}");
    if !m.invariant_holds() {
        return Err("exactly-once invariant violated".into());
    }
    Ok(())
}

/// The `serve --shards N` demo: the same representative mix as the
/// single-service demo, but routed through the supervised multi-shard
/// service so the report shows per-shard rows and router counters.
fn serve_sharded_demo(cfg: ShardServeConfig, requests: u64) -> CliResult {
    let svc = ShardedService::start(cfg)?;
    let (tx, rx) = std::sync::mpsc::channel();
    let mut accepted = 0u64;
    let mut answered = 0u64;
    for id in 0..requests {
        let mut req = match id % 8 {
            0..=4 => Request::new(id, "svc.sum"),
            5 => {
                let mut r = Request::new(id, "svc.sum");
                r.fuel = 16;
                r
            }
            6 => {
                let mut r = Request::new(id, "svc.mem");
                r.max_pages = 3;
                r
            }
            _ => Request::new(id, "999.loop"),
        };
        if req.workload == "999.loop" {
            req.deadline_ms = 10;
            req.fuel = u64::MAX / 4;
        }
        if svc.submit(req, &tx).is_ok() {
            accepted += 1;
        }
        while rx.try_recv().is_ok() {
            answered += 1;
        }
    }
    while answered < accepted {
        match rx.recv_timeout(std::time::Duration::from_secs(30)) {
            Ok(_) => answered += 1,
            Err(_) => break,
        }
    }
    let m = svc.shutdown();
    println!("served {accepted} accepted of {requests} offered\n{m}");
    if !m.invariant_holds() {
        return Err("exactly-once invariant violated".into());
    }
    Ok(())
}

fn cmd_soak(args: &[String]) -> CliResult {
    if args.iter().any(|a| a == "--shard-chaos") {
        return cmd_shard_soak(args);
    }
    if args.iter().any(|a| a == "--adaptive") {
        return cmd_adaptive_soak(args);
    }
    let mut cfg = SoakConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = parse_seed(s)?;
    }
    if let Some(s) = flag_value(args, "--requests") {
        cfg.requests = s.parse()?;
    }
    if args.iter().any(|a| a == "--no-chaos") {
        cfg.chaos = false;
    }
    if let Some(s) = flag_value(args, "--workers") {
        cfg.serve.workers = s.parse()?;
    }
    let report = run_soak(&cfg)?;
    println!("{report}");
    if !report.is_clean() {
        return Err(format!("soak violated {} invariant(s)", report.violations.len()).into());
    }
    Ok(())
}

/// The `soak --shard-chaos` driver: seeded kills, a wedge, and a
/// rebalance over the sharded service, with exactly-once verified by
/// the driver, the service counters, and (with --ledger) an offline
/// replay of the durable journal.
fn cmd_shard_soak(args: &[String]) -> CliResult {
    let mut cfg = ShardSoakConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = parse_seed(s)?;
    }
    if let Some(s) = flag_value(args, "--requests") {
        cfg.requests = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.sharded.policy.shards = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--workers") {
        cfg.sharded.serve.workers = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--ledger") {
        cfg.sharded.ledger = Some(std::path::PathBuf::from(s));
    }
    let report = run_shard_soak(&cfg)?;
    println!("{report}");
    if !report.is_clean() {
        return Err(format!(
            "shard soak violated {} invariant(s)",
            report.violations.len()
        )
        .into());
    }
    Ok(())
}

/// The `soak --adaptive` driver: a phase-shift request stream over the
/// governed service (single or sharded), asserting live hot-swap,
/// breaker-informed demotion, and panic-pinned degradation.
fn cmd_adaptive_soak(args: &[String]) -> CliResult {
    let mut cfg = AdaptiveSoakConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = parse_seed(s)?;
    }
    if let Some(s) = flag_value(args, "--requests") {
        // The soak runs four phases; spread the budget across them.
        let requests: u64 = s.parse()?;
        cfg.phase_requests = (requests / 4).max(200);
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.shards = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--workers") {
        cfg.serve.workers = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--verify-policy") {
        cfg.governor.verify = s.parse::<VerifyPolicy>()?;
    }
    if let Some(s) = flag_value(args, "--inject-miscompile") {
        cfg.governor.inject_miscompile_at_epoch = Some(s.parse()?);
        if cfg.governor.verify == VerifyPolicy::Differential {
            return Err(
                "--inject-miscompile needs --verify-policy prefer-symbolic or require-proof \
                 (the differential probe alone may publish the miscompiled frame)"
                    .into(),
            );
        }
    }
    let report = run_adaptive_soak(&cfg)?;
    println!("{report}");
    if let Some(path) = flag_value(args, "--out") {
        needle::report::write_report(std::path::Path::new(path), &report.to_json())?;
        println!("report written to {path}");
    }
    if !report.is_clean() {
        return Err(format!(
            "adaptive soak violated {} invariant(s)",
            report.violations.len()
        )
        .into());
    }
    Ok(())
}

/// The `loadgen` subcommand: deterministic open-loop arrival curves
/// over the virtual-time simulation of the hardened serving stack, with
/// retry-storm chaos and the overload gates behind --check.
fn cmd_loadgen(args: &[String]) -> CliResult {
    use needle::journal::Json;
    use needle::{check_loadgen, run_loadgen, LoadgenConfig, Scenario};

    let mut cfg = LoadgenConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = parse_seed(s)?;
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.shards = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--workers") {
        cfg.workers_per_shard = s.parse()?;
    }
    if let Some(s) = flag_value(args, "--queue-depth") {
        cfg.queue_depth = s.parse()?;
    }
    if args.iter().any(|a| a == "--no-adaptive-admission") {
        cfg.adaptive_admission = false;
    }
    let scenarios: Vec<Scenario> = match flag_value(args, "--scenario") {
        None | Some("all") => Scenario::all().to_vec(),
        Some(s) => vec![s.parse()?],
    };

    let mut payloads = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for scenario in &scenarios {
        cfg.scenario = *scenario;
        let report = run_loadgen(&cfg);
        print!("{report}");
        let fails = check_loadgen(&report);
        if fails.is_empty() {
            println!("loadgen {scenario}: CLEAN");
        } else {
            for f in &fails {
                println!("loadgen {scenario}: GATE FAILED: {f}");
                failures.push(format!("{scenario}: {f}"));
            }
        }
        println!();
        payloads.push(report.data_json());
    }

    if let Some(path) = flag_value(args, "--out") {
        let data = Json::Obj(vec![("scenarios".into(), Json::Arr(payloads))]);
        let env = needle::report::envelope("loadgen", cfg.seed, &failures, data);
        needle::report::write_report(std::path::Path::new(path), &env)?;
        println!("report written to {path}");
    }
    println!(
        "loadgen verdict: {}",
        if failures.is_empty() { "CLEAN" } else { "GATES FAILED" }
    );
    if args.iter().any(|a| a == "--check") && !failures.is_empty() {
        return Err(format!("loadgen failed {} overload gate(s)", failures.len()).into());
    }
    Ok(())
}

/// The `audit <journal>` subcommand: offline exactly-once replay of a
/// durable dedup journal, independent of the service that wrote it.
fn cmd_audit(args: &[String]) -> CliResult {
    let path = args
        .get(1)
        .filter(|p| !p.starts_with('-'))
        .ok_or("audit needs a journal path (written via `soak --shard-chaos --ledger PATH`)")?;
    let audit = audit_ledger(std::path::Path::new(path))?;
    println!("{audit}");
    if !audit.is_clean() {
        return Err(format!(
            "ledger audit found {} violation(s)",
            audit.violations.len()
        )
        .into());
    }
    Ok(())
}

/// The `certify` subcommand: per-frame symbolic equivalence verdicts
/// for a workload's hottest paths, with an optional durable verdict
/// cache and a JSON artifact for CI.
fn cmd_certify(args: &[String]) -> CliResult {
    let target = args
        .get(1)
        .filter(|p| !p.starts_with('-'))
        .ok_or("certify needs a workload name or `all` (try `needle list`)")?;
    let top: usize = match flag_value(args, "--top") {
        Some(s) => s.parse()?,
        None => 3,
    };
    let cert_cfg = needle_frames::CertConfig::default();
    let mut cache = match flag_value(args, "--cache") {
        Some(p) => Some(VerdictJournal::open(std::path::Path::new(p))?),
        None => None,
    };
    let names: Vec<String> = if target == "all" {
        needle_workloads::specs()
            .iter()
            .map(|s| s.name.to_string())
            .collect()
    } else {
        vec![target.clone()]
    };

    let mut total = CertStats::default();
    let mut reports = Vec::new();
    for name in &names {
        let report = certify_workload(name, top, &cert_cfg, cache.as_mut())?;
        println!("workload {name}: {} frame(s)", report.frames.len());
        println!(
            "  {:>8} {:>7} {:>5} {:<12} {:>6} {:>9} {:>6}/{:<6} {:>8} {:>9}",
            "path", "blocks", "ops", "verdict", "cache", "solve µs", "oblig", "syn", "clauses", "conflicts"
        );
        for r in &report.frames {
            println!(
                "  {:>8} {:>7} {:>5} {:<12} {:>6} {:>9} {:>6}/{:<6} {:>8} {:>9}{}",
                r.path_id,
                r.blocks,
                r.ops,
                r.verdict,
                if r.cached { "hit" } else { "-" },
                r.solve_us,
                r.obligations,
                r.discharged,
                r.sat_clauses,
                r.conflicts,
                if r.why.is_empty() {
                    String::new()
                } else {
                    format!("  ({})", r.why)
                }
            );
        }
        total.merge_from(&report.stats);
        reports.push(report);
    }
    println!("\n{total}");
    if let Some(path) = flag_value(args, "--json") {
        use needle::journal::Json;
        let violations: Vec<String> = reports
            .iter()
            .flat_map(|r| {
                r.frames
                    .iter()
                    .filter(|f| f.verdict == "refuted")
                    .map(|f| format!("{}: path {} refuted", r.workload, f.path_id))
            })
            .collect();
        let data = Json::Obj(vec![(
            "workloads".into(),
            Json::Arr(reports.iter().map(|r| r.to_json()).collect()),
        )]);
        let env = needle::report::envelope("certify", 0, &violations, data);
        needle::report::write_report(std::path::Path::new(path), &env)?;
        println!("report written to {path}");
    }
    let refuted: usize = reports.iter().map(|r| r.refuted()).sum();
    if refuted > 0 {
        return Err(format!("{refuted} frame(s) refuted — miscompile detected").into());
    }
    Ok(())
}

fn cmd_print_ir(name: &str) -> CliResult {
    let w = load(name)?;
    print!("{}", module_to_string(&w.module));
    Ok(())
}

fn cmd_run_ir(args: &[String]) -> CliResult {
    let path = args.get(1).ok_or("missing IR file path")?;
    let text = std::fs::read_to_string(path)?;
    let module = needle_ir::parse::parse_module(&text)?;
    if module.funcs.is_empty() {
        return Err(format!("{path}: no functions in module").into());
    }
    needle_ir::verify::verify_module(&module).map_err(|(f, e)| format!("{f:?}: {e}"))?;
    let func = needle_ir::FuncId(0);
    let call_args: Vec<Constant> = args[2..]
        .iter()
        .map(|a| a.parse::<i64>().map(Constant::Int))
        .collect::<Result<_, _>>()?;
    let arity = module.func(func).params.len();
    if call_args.len() < arity {
        return Err(format!(
            "{} expects {arity} argument(s), got {}",
            module.func(func).name,
            call_args.len()
        )
        .into());
    }
    let mut mem = Memory::new();
    let out = Interp::new(&module).run(func, &call_args, &mut mem, &mut NullSink)?;
    println!("{}", function_to_string(module.func(func)));
    match out {
        Some(v) => println!("=> {v:?}"),
        None => println!("=> (void)"),
    }
    Ok(())
}
