//! Frame-level optimizations and transformations.
//!
//! * [`dce_frame`] — dead-op elimination: drop ops that feed no live-out,
//!   store, or guard (dataflow predication executes everything, so dead
//!   ops waste fabric area and energy — this is the ablation DESIGN.md
//!   calls out);
//! * [`guard_policy`] — §V: "NEEDLE regulates when the guard checks are
//!   inserted along the path to reduce the overheads of speculation
//!   failure": reposition guards either as-early-as-possible (cheap
//!   aborts) or as-late-as-possible (maximum hoisting / ILP);
//! * [`concat_frames`] — §IV-A target expansion materialized: stitch two
//!   copies of a frame back-to-back, wiring loop-carried live-outs of the
//!   first into the live-ins of the second, to build a two-iteration
//!   offload unit.

use std::collections::HashMap;
use std::fmt;

use crate::frame::{Frame, FrameOp, FrameOpKind, FrameValue, LiveOut};
use crate::symeq::{certify_frame_pair, CertConfig, CertVerdict, Certificate, SymEqError};

/// Frame transformation failures (all indicate a structurally broken
/// frame; valid frames never produce them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptError {
    /// An op (or live-out) references an op slot that does not exist or
    /// was eliminated while still referenced.
    BrokenDataflow {
        /// The offending referenced index.
        index: usize,
    },
    /// Scheduling found no ready op: the dataflow graph has a cycle.
    CyclicDataflow,
    /// A loop-carried pair references a live-out index out of range.
    BadLoopCarried {
        /// The offending live-out index.
        index: usize,
    },
    /// `concat_frames` was asked for zero copies.
    ZeroCopies,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::BrokenDataflow { index } => {
                write!(f, "dangling reference to op {index}")
            }
            OptError::CyclicDataflow => write!(f, "frame dataflow contains a cycle"),
            OptError::BadLoopCarried { index } => {
                write!(f, "loop-carried pair references live-out {index} out of range")
            }
            OptError::ZeroCopies => write!(f, "frame expansion requires at least one copy"),
        }
    }
}

impl std::error::Error for OptError {}

/// Remove ops whose results reach no store, guard, or live-out. Returns
/// the number of ops eliminated.
///
/// # Errors
/// [`OptError::BrokenDataflow`] if the frame references nonexistent ops.
pub fn dce_frame(frame: &mut Frame) -> Result<usize, OptError> {
    let n = frame.ops.len();
    let mut live = vec![false; n];
    let mark_value =
        |v: FrameValue, live: &mut Vec<bool>, stack: &mut Vec<usize>| -> Result<(), OptError> {
            if let FrameValue::Op(i) = v {
                if i >= n {
                    return Err(OptError::BrokenDataflow { index: i });
                }
                if !live[i] {
                    live[i] = true;
                    stack.push(i);
                }
            }
            Ok(())
        };
    let mut stack = Vec::new();
    for (i, op) in frame.ops.iter().enumerate() {
        if matches!(op.kind, FrameOpKind::Store | FrameOpKind::Guard { .. }) {
            live[i] = true;
            stack.push(i);
        }
    }
    for lo in &frame.live_outs {
        mark_value(lo.value, &mut live, &mut stack)?;
    }
    while let Some(i) = stack.pop() {
        let op = frame.ops[i].clone();
        for a in op.args.iter().chain(op.pred.iter()) {
            mark_value(*a, &mut live, &mut stack)?;
        }
    }

    // Compact, remapping indices.
    let mut remap: Vec<Option<usize>> = vec![None; n];
    let mut new_ops: Vec<FrameOp> = Vec::with_capacity(n);
    for (i, op) in frame.ops.iter().enumerate() {
        if live[i] {
            remap[i] = Some(new_ops.len());
            new_ops.push(op.clone());
        }
    }
    let fix = |v: &mut FrameValue| -> Result<(), OptError> {
        if let FrameValue::Op(i) = v {
            *i = remap
                .get(*i)
                .copied()
                .flatten()
                .ok_or(OptError::BrokenDataflow { index: *i })?;
        }
        Ok(())
    };
    for op in &mut new_ops {
        for a in &mut op.args {
            fix(a)?;
        }
        if let Some(p) = &mut op.pred {
            fix(p)?;
        }
    }
    for lo in &mut frame.live_outs {
        fix(&mut lo.value)?;
    }
    // Every genuine guard op was rooted above, so a guard index that
    // fails to remap is a structural lie (out of range, or pointing at a
    // non-guard op that was eliminated) — report it instead of silently
    // dropping the entry and letting a corrupt frame escape.
    let mut new_guards = Vec::with_capacity(frame.guards.len());
    for &g in &frame.guards {
        let idx = remap
            .get(g)
            .copied()
            .flatten()
            .ok_or(OptError::BrokenDataflow { index: g })?;
        new_guards.push(idx);
    }
    frame.guards = new_guards;
    let removed = n - new_ops.len();
    frame.undo_log_size = new_ops
        .iter()
        .filter(|o| matches!(o.kind, FrameOpKind::Store))
        .count();
    frame.ops = new_ops;
    Ok(removed)
}

/// Guard placement policy (§V "guard position").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPolicy {
    /// Guards stay where region lowering emitted them (program order).
    AsEmitted,
    /// Guards sink to the end of the frame: every other op hoists above
    /// them, maximising speculative ILP at the cost of late failure
    /// detection (the paper's evaluation assumption).
    Late,
    /// Guards rise as early as their condition allows: aborts are detected
    /// sooner (cheaper failures) but nothing structurally changes for pure
    /// dataflow — this models an early-abort fabric.
    Early,
}

/// Reorder guard ops according to `policy`, preserving dataflow validity
/// (an op never moves before its operands). Returns the frame's guard
/// indices after placement.
///
/// # Errors
/// [`OptError::CyclicDataflow`] if the op graph has no valid schedule;
/// [`OptError::BrokenDataflow`] on dangling references.
pub fn apply_guard_policy(frame: &mut Frame, policy: GuardPolicy) -> Result<Vec<usize>, OptError> {
    let ready = |i: usize, placed: &[bool], ops: &[FrameOp]| {
        ops[i]
            .args
            .iter()
            .chain(ops[i].pred.iter())
            .all(|a| match a {
                FrameValue::Op(j) => placed.get(*j).copied().unwrap_or(false),
                _ => true,
            })
    };
    match policy {
        GuardPolicy::AsEmitted => Ok(frame.guards.clone()),
        GuardPolicy::Late => {
            // Sink each guard as late as its consumers allow. A blind
            // stable partition would move a guard past an op that reads
            // its pass bit (e.g. a store predicated on the guard result),
            // turning a valid frame into one with forward references —
            // schedule non-guards first but respect dataflow instead.
            let n = frame.ops.len();
            let mut placed = vec![false; n];
            let mut order: Vec<usize> = Vec::with_capacity(n);
            while order.len() < n {
                let next_plain = (0..n).find(|i| {
                    !placed[*i]
                        && !matches!(frame.ops[*i].kind, FrameOpKind::Guard { .. })
                        && ready(*i, &placed, &frame.ops)
                });
                let pick = next_plain.or_else(|| {
                    (0..n).find(|i| !placed[*i] && ready(*i, &placed, &frame.ops))
                });
                let i = pick.ok_or(OptError::CyclicDataflow)?;
                placed[i] = true;
                order.push(i);
            }
            permute(frame, &order)
        }
        GuardPolicy::Early => {
            // Move each guard right after its latest dependency: compute a
            // schedule order where guards get priority.
            let n = frame.ops.len();
            let mut placed = vec![false; n];
            let mut order: Vec<usize> = Vec::with_capacity(n);
            // Repeatedly emit any ready guard first, else the next ready op.
            while order.len() < n {
                let next_guard = (0..n).find(|i| {
                    !placed[*i]
                        && matches!(frame.ops[*i].kind, FrameOpKind::Guard { .. })
                        && ready(*i, &placed, &frame.ops)
                });
                let pick = next_guard.or_else(|| {
                    (0..n).find(|i| !placed[*i] && ready(*i, &placed, &frame.ops))
                });
                let i = pick.ok_or(OptError::CyclicDataflow)?;
                placed[i] = true;
                order.push(i);
            }
            permute(frame, &order)
        }
    }
}

/// Reorder `frame.ops` into `order` (old indices in new order), remapping
/// all references. Returns the new guard indices.
fn permute(frame: &mut Frame, order: &[usize]) -> Result<Vec<usize>, OptError> {
    let mut remap = vec![0usize; frame.ops.len()];
    for (new_idx, old_idx) in order.iter().enumerate() {
        remap[*old_idx] = new_idx;
    }
    let mut new_ops: Vec<FrameOp> = order.iter().map(|i| frame.ops[*i].clone()).collect();
    let fix = |v: &mut FrameValue| -> Result<(), OptError> {
        if let FrameValue::Op(i) = v {
            *i = remap
                .get(*i)
                .copied()
                .ok_or(OptError::BrokenDataflow { index: *i })?;
        }
        Ok(())
    };
    for op in &mut new_ops {
        for a in &mut op.args {
            fix(a)?;
        }
        if let Some(p) = &mut op.pred {
            fix(p)?;
        }
    }
    for lo in &mut frame.live_outs {
        fix(&mut lo.value)?;
    }
    frame.ops = new_ops;
    frame.guards = frame
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o.kind, FrameOpKind::Guard { .. }))
        .map(|(i, _)| i)
        .collect();
    Ok(frame.guards.clone())
}

/// Concatenate a frame with itself `copies` times, wiring each iteration's
/// loop-carried live-outs into the next iteration's live-ins (§IV-A: the
/// same path repeats back-to-back in 17 of 29 workloads, enabling 2×
/// offload units).
///
/// Live-ins that are not loop-carried are shared across copies; live-outs
/// are taken from the final copy. Guards of every copy accumulate: the
/// expanded frame aborts if any iteration would have diverged.
pub fn concat_frames(frame: &Frame, copies: usize) -> Result<Frame, OptError> {
    if copies == 0 {
        return Err(OptError::ZeroCopies);
    }
    let mut out = frame.clone();
    for _ in 1..copies {
        let base = out.ops.len();
        // live-in index -> frame value feeding the next copy
        let mut carried: HashMap<usize, FrameValue> = HashMap::new();
        for (li, lo) in &frame.loop_carried {
            let value = out
                .live_outs
                .get(*lo)
                .ok_or(OptError::BadLoopCarried { index: *lo })?
                .value;
            carried.insert(*li, value);
        }
        let map_value = |v: FrameValue| -> FrameValue {
            match v {
                FrameValue::Op(i) => FrameValue::Op(i + base),
                FrameValue::LiveIn(k) => carried.get(&k).copied().unwrap_or(FrameValue::LiveIn(k)),
                c => c,
            }
        };
        for op in &frame.ops {
            let mut cloned = op.clone();
            for a in &mut cloned.args {
                *a = map_value(*a);
            }
            if let Some(p) = &mut cloned.pred {
                *p = map_value(*p);
            }
            out.ops.push(cloned);
        }
        out.guards
            .extend(frame.guards.iter().map(|g| g + base));
        // Live-outs now come from the new copy.
        out.live_outs = frame
            .live_outs
            .iter()
            .map(|lo| LiveOut {
                inst: lo.inst,
                value: map_value(lo.value),
            })
            .collect();
        out.undo_log_size += frame.undo_log_size;
    }
    Ok(out)
}

/// Result of a certified transformation: the pass output (when the
/// mutation was kept) plus the equivalence certificate behind it.
#[derive(Debug, Clone)]
pub struct CertifiedPass<T> {
    /// The underlying pass result; `None` when the transformation was
    /// rolled back because the checker refuted it.
    pub result: Option<T>,
    /// The before/after equivalence certificate.
    pub cert: Certificate,
}

impl<T> CertifiedPass<T> {
    /// Whether the transformed frame was kept.
    pub fn applied(&self) -> bool {
        self.result.is_some()
    }
}

fn certified<T>(
    frame: &mut Frame,
    cfg: &CertConfig,
    pass: impl FnOnce(&mut Frame) -> Result<T, OptError>,
) -> Result<CertifiedPass<T>, OptError> {
    let before = frame.clone();
    let result = pass(frame)?;
    let cert = certify_frame_pair(&before, frame, cfg).map_err(|e| match e {
        SymEqError::Malformed { op, .. } => OptError::BrokenDataflow { index: op },
    })?;
    if matches!(cert.verdict, CertVerdict::Refuted(_)) {
        // The checker found a concrete input where the transformed frame
        // diverges: undo the miscompile and surface the evidence.
        *frame = before;
        return Ok(CertifiedPass { result: None, cert });
    }
    // Proved, or unproven-but-not-disproven (Timeout/Unsupported): keep
    // the transformation; the caller decides whether an unproven frame
    // is publishable under its verification policy.
    Ok(CertifiedPass {
        result: Some(result),
        cert,
    })
}

/// [`dce_frame`] with a symbolic proof obligation: the eliminated frame
/// must be provably equivalent to the original, or the elimination is
/// rolled back and the refutation returned.
///
/// # Errors
/// Propagates [`dce_frame`]'s structural errors.
pub fn dce_frame_certified(
    frame: &mut Frame,
    cfg: &CertConfig,
) -> Result<CertifiedPass<usize>, OptError> {
    certified(frame, cfg, dce_frame)
}

/// [`apply_guard_policy`] with a symbolic proof obligation, rolling the
/// repositioning back if the checker refutes it.
///
/// # Errors
/// Propagates [`apply_guard_policy`]'s structural errors.
pub fn apply_guard_policy_certified(
    frame: &mut Frame,
    policy: GuardPolicy,
    cfg: &CertConfig,
) -> Result<CertifiedPass<Vec<usize>>, OptError> {
    certified(frame, cfg, |f| apply_guard_policy(f, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_frame;
    use crate::exec::{run_frame, FrameOutcome};
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::interp::{Memory, Val};
    use needle_ir::{BlockId, Type, Value as V};
    use needle_regions::OffloadRegion;

    /// i2 = i + 1; s2 = s + i*3; guard(i2 < n)  — a loop-iteration frame.
    fn iteration_frame() -> Frame {
        let mut fb = FunctionBuilder::new("it", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, V::int(0))]);
        let s = fb.phi(Type::I64, &[(entry, V::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let t = fb.mul(i, V::int(3));
        let s2 = fb.add(s, t);
        let dead = fb.mul(i, V::int(99)); // used by nothing
        let _ = dead;
        let i2 = fb.add(i, V::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(s));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        let s_id = s.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(body);
        f.inst_mut(s_id).args.push(s2);
        f.inst_mut(s_id).phi_blocks.push(body);
        build_frame(&f, &OffloadRegion::from_path(&[BlockId(1), BlockId(2)], 10, 0.9)).unwrap()
    }

    #[test]
    fn dce_removes_dead_ops_and_keeps_semantics() {
        let mut frame = iteration_frame();
        let before_ops = frame.num_ops();
        let mut mem = Memory::new();
        let lv = |frame: &Frame| -> Vec<Val> {
            frame
                .live_ins
                .iter()
                .map(|li| match li.value {
                    V::Arg(0) => Val::Int(100),          // n
                    V::Inst(_) => Val::Int(4),           // i or s φ
                    other => panic!("{other:?}"),
                })
                .collect()
        };
        let out_before = run_frame(&frame, &lv(&frame), &mut mem).unwrap();
        let removed = dce_frame(&mut frame).unwrap();
        assert!(removed >= 1, "dead mul must go");
        assert!(frame.num_ops() < before_ops);
        frame.validate().unwrap();
        let out_after = run_frame(&frame, &lv(&frame), &mut mem).unwrap();
        assert_eq!(out_before, out_after);
    }

    #[test]
    fn guard_policies_preserve_dataflow_and_outcomes() {
        for policy in [GuardPolicy::AsEmitted, GuardPolicy::Late, GuardPolicy::Early] {
            let mut frame = iteration_frame();
            let guards = apply_guard_policy(&mut frame, policy).unwrap();
            assert_eq!(guards.len(), 1);
            frame.validate().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            let lv: Vec<Val> = frame
                .live_ins
                .iter()
                .map(|li| match li.value {
                    V::Arg(0) => Val::Int(100),
                    V::Inst(_) => Val::Int(4),
                    other => panic!("{other:?}"),
                })
                .collect();
            let mut mem = Memory::new();
            let out = run_frame(&frame, &lv, &mut mem).unwrap();
            assert!(out.committed(), "{policy:?}: {out:?}");
        }
    }

    #[test]
    fn late_policy_puts_guards_last() {
        let mut frame = iteration_frame();
        apply_guard_policy(&mut frame, GuardPolicy::Late).unwrap();
        let g = frame.guards[0];
        assert_eq!(g, frame.ops.len() - 1);
    }

    #[test]
    fn concat_doubles_ops_and_chains_induction() {
        let frame = iteration_frame();
        assert!(!frame.loop_carried.is_empty(), "loop-carried pairs detected");
        let double = concat_frames(&frame, 2).unwrap();
        double.validate().unwrap();
        assert_eq!(double.num_ops(), frame.num_ops() * 2);
        assert_eq!(double.guards.len(), frame.guards.len() * 2);
        // Execute: i=0, s=0, n=100. Two iterations: s = 0*3 + 1*3 = 3, i = 2.
        let lv: Vec<Val> = double
            .live_ins
            .iter()
            .map(|li| match li.value {
                V::Arg(0) => Val::Int(100),
                V::Inst(_) => Val::Int(0),
                other => panic!("{other:?}"),
            })
            .collect();
        let mut mem = Memory::new();
        let out = run_frame(&double, &lv, &mut mem).unwrap();
        let FrameOutcome::Committed { live_outs, .. } = out else {
            panic!("expected commit: {out:?}");
        };
        assert!(live_outs.contains(&Val::Int(2)), "i after 2 iters: {live_outs:?}");
        assert!(live_outs.contains(&Val::Int(3)), "s after 2 iters: {live_outs:?}");
    }

    /// A frame whose store is predicated on a guard's pass bit — legal
    /// dataflow, but the old `Late` partition moved the guard past its
    /// consumer and corrupted the frame.
    fn guard_consuming_frame() -> Frame {
        use crate::frame::{FrameOp, FrameOpKind, LiveIn};
        use needle_ir::{Constant, InstId, Op, Value};
        let cmp = FrameOp {
            kind: FrameOpKind::Compute(Op::ICmp(needle_ir::CmpOp::Gt)),
            args: vec![FrameValue::LiveIn(0), FrameValue::Const(Constant::Int(0))],
            ty: Type::I1,
            pred: None,
            src: None,
            imm: 0,
        };
        let guard = FrameOp {
            kind: FrameOpKind::Guard { expected: true },
            args: vec![FrameValue::Op(0)],
            ty: Type::I1,
            pred: None,
            src: None,
            imm: 0,
        };
        let store = FrameOp {
            kind: FrameOpKind::Store,
            args: vec![FrameValue::LiveIn(0), FrameValue::LiveIn(1)],
            ty: Type::I64,
            pred: Some(FrameValue::Op(1)), // fires only if the guard passed
            src: None,
            imm: 0,
        };
        Frame {
            ops: vec![cmp, guard, store],
            live_ins: vec![
                LiveIn {
                    value: Value::Arg(0),
                    ty: Type::I64,
                },
                LiveIn {
                    value: Value::Arg(1),
                    ty: Type::I64,
                },
            ],
            live_outs: vec![LiveOut {
                inst: InstId(0),
                value: FrameValue::Op(0),
            }],
            guards: vec![1],
            phis_cancelled: 0,
            undo_log_size: 1,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[BlockId(0)], 1, 1.0),
        }
    }

    #[test]
    fn late_policy_respects_guard_consumers() {
        let mut frame = guard_consuming_frame();
        let before = frame.clone();
        apply_guard_policy(&mut frame, GuardPolicy::Late).unwrap();
        frame
            .validate()
            .expect("late placement must keep dataflow valid");
        // The reposition must also be semantically invisible — prove it.
        let cert =
            crate::symeq::certify_frame_pair(&before, &frame, &CertConfig::default()).unwrap();
        assert_eq!(cert.verdict, CertVerdict::Proved, "{:?}", cert.stats);
    }

    #[test]
    fn dce_reports_bogus_guard_indices() {
        let mut frame = iteration_frame();
        frame.guards.push(9999);
        let err = dce_frame(&mut frame).unwrap_err();
        assert_eq!(err, OptError::BrokenDataflow { index: 9999 });
    }

    #[test]
    fn certified_passes_prove_and_keep_valid_transformations() {
        let mut frame = iteration_frame();
        let dce = dce_frame_certified(&mut frame, &CertConfig::default()).unwrap();
        assert!(dce.applied(), "{:?}", dce.cert.verdict);
        assert_eq!(dce.cert.verdict, CertVerdict::Proved);
        assert!(dce.result.unwrap() >= 1);
        for policy in [GuardPolicy::Late, GuardPolicy::Early] {
            let mut frame = iteration_frame();
            let p = apply_guard_policy_certified(&mut frame, policy, &CertConfig::default())
                .unwrap();
            assert!(p.applied());
            assert_eq!(p.cert.verdict, CertVerdict::Proved, "{policy:?}");
        }
    }

    #[test]
    fn certified_pass_rolls_back_a_refuted_miscompile() {
        use crate::frame::FrameOpKind;
        use needle_ir::{Constant, Op};
        // A deliberately broken "pass": drops the store by rewriting it to
        // a no-op add — exactly the miscompile class DCE could commit if
        // it ever treated a side-effecting op as dead.
        let drop_store = |f: &mut Frame| -> Result<usize, OptError> {
            let at = f
                .ops
                .iter()
                .position(|o| matches!(o.kind, FrameOpKind::Store))
                .ok_or(OptError::ZeroCopies)?;
            f.ops[at].kind = FrameOpKind::Compute(Op::Add);
            f.ops[at].args = vec![
                FrameValue::Const(Constant::Int(0)),
                FrameValue::Const(Constant::Int(0)),
            ];
            f.ops[at].pred = None;
            f.undo_log_size = 0;
            Ok(1)
        };
        let mut frame = guard_consuming_frame();
        let original = frame.clone();
        let out = super::certified(&mut frame, &CertConfig::default(), drop_store).unwrap();
        assert!(!out.applied(), "miscompile must not be kept");
        assert!(matches!(out.cert.verdict, CertVerdict::Refuted(_)));
        assert_eq!(frame, original, "frame must be rolled back");
    }

    #[test]
    fn concat_guard_fails_when_second_iteration_diverges() {
        let frame = iteration_frame();
        let double = concat_frames(&frame, 2).unwrap();
        // n = 1: the first iteration's guard (i=0 < 1) passes but the
        // second copy's guard (i=1 < 1) fails — the expanded unit aborts
        // as a whole.
        let lv: Vec<Val> = double
            .live_ins
            .iter()
            .map(|li| match li.value {
                V::Arg(0) => Val::Int(1),
                V::Inst(_) => Val::Int(0),
                other => panic!("{other:?}"),
            })
            .collect();
        let mut mem = Memory::new();
        let out = run_frame(&double, &lv, &mut mem).unwrap();
        assert!(!out.committed(), "{out:?}");
    }
}
