//! `needle-frames` — software frames: Needle's atomic offload units (§V).
//!
//! A software frame packages an offload region as a flat, accelerator-ready
//! dataflow graph:
//!
//! * region-internal branches become **guards** — asynchronous `I1` checks
//!   that do not gate any computation; every operation (memory included)
//!   executes speculatively and the frame commits only if every guard
//!   passes;
//! * φs along a single flow of control cancel (Table II column C6); φs at
//!   Braid-internal merge points lower to predicated selects;
//! * stores are instrumented with a software **undo log** so a failed guard
//!   rolls externally-visible memory back exactly;
//! * the **live-in / live-out** boundary is the only communication with the
//!   host core (no shared architectural state).
//!
//! [`build_frame`] constructs a [`Frame`] from an
//! [`OffloadRegion`](needle_regions::OffloadRegion); [`exec::run_frame`]
//! executes one atomically against an
//! [`interp::Memory`](needle_ir::interp::Memory), committing or rolling
//! back, which both verifies frame semantics and drives the offload
//! simulation.

pub mod build;
pub mod exec;
pub mod frame;
pub mod inject;
pub mod liveness;
pub mod opt;
pub mod symeq;
pub mod verify;

pub use build::{build_frame, BuildError};
pub use exec::{run_frame, run_frame_with, AbortCause, ExecFrameError, FrameOutcome};
pub use frame::{Frame, FrameOp, FrameOpKind, FrameValue, LiveIn, LiveOut};
pub use inject::{Fault, FaultInjector, FaultKind, InjectionRecord, InjectorConfig};
pub use liveness::{live_ins, live_outs};
pub use opt::{
    apply_guard_policy, apply_guard_policy_certified, concat_frames, dce_frame,
    dce_frame_certified, CertifiedPass, GuardPolicy, OptError,
};
pub use symeq::{
    certify_frame, certify_frame_pair, frame_fingerprint, CertConfig, CertVerdict, Certificate,
    CounterExample, SolveStats, SymEqError,
};
pub use verify::{verify_invocation, RefRun, VerifyError, Verdict};
