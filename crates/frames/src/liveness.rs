//! Live-in / live-out analysis at region boundaries (Table II C5, IV C7).
//!
//! Conventions:
//!
//! * a φ in the *region entry block* is itself a live-in — the host passes
//!   the already-merged value when invoking the frame;
//! * a value flowing into an entry-block φ along a back edge from inside
//!   the region (the loop-carried update) is a live-out — the host needs it
//!   to re-invoke the frame for the next iteration;
//! * constants never appear in either set.

use std::collections::BTreeSet;

use needle_ir::{Function, InstId, Terminator, Value};
use needle_regions::OffloadRegion;

/// IR values defined outside `region` (plus entry-block φs) that the frame
/// consumes, in first-use order.
pub fn live_ins(func: &Function, region: &OffloadRegion) -> Vec<Value> {
    let defined_in: BTreeSet<InstId> = region
        .blocks
        .iter()
        .flat_map(|b| func.block(*b).insts.iter().copied())
        .collect();
    let entry = region.entry();
    let entry_phis: BTreeSet<InstId> = func
        .block(entry)
        .insts
        .iter()
        .copied()
        .filter(|i| func.inst(*i).is_phi())
        .collect();

    let mut out: Vec<Value> = Vec::new();
    let push = |v: Value, out: &mut Vec<Value>| {
        let external = match v {
            Value::Const(_) => false,
            Value::Arg(_) => true,
            Value::Inst(id) => entry_phis.contains(&id) || !defined_in.contains(&id),
        };
        if external && !out.contains(&v) {
            out.push(v);
        }
    };
    // Entry φs first: they are the frame's inputs in block order.
    for &p in func.block(entry).insts.iter() {
        if entry_phis.contains(&p) {
            push(Value::Inst(p), &mut out);
        }
    }
    for &bb in &region.blocks {
        for &iid in &func.block(bb).insts {
            if entry_phis.contains(&iid) {
                continue; // handled above; constituents live outside
            }
            let inst = func.inst(iid);
            if inst.is_phi() {
                // Non-entry φ: only incomings along in-region edges matter.
                for (v, pb) in inst.args.iter().zip(&inst.phi_blocks) {
                    if region.edges.contains(&(*pb, bb)) {
                        push(*v, &mut out);
                    }
                }
            } else {
                for a in &inst.args {
                    push(*a, &mut out);
                }
            }
        }
        if let Terminator::CondBr { cond, .. } = func.block(bb).term {
            push(cond, &mut out);
        }
    }
    out
}

/// Region-defined instructions whose values are consumed outside the
/// region: by external instructions/terminators/φs, by the exit block's
/// terminator, or by an entry-block φ along a back edge (loop-carried).
pub fn live_outs(func: &Function, region: &OffloadRegion) -> Vec<InstId> {
    let members: BTreeSet<_> = region.blocks.iter().copied().collect();
    let defined_in: BTreeSet<InstId> = region
        .blocks
        .iter()
        .flat_map(|b| func.block(*b).insts.iter().copied())
        .collect();
    let mut live: Vec<InstId> = Vec::new();
    let mark = |v: Value, live: &mut Vec<InstId>| {
        if let Value::Inst(id) = v {
            if defined_in.contains(&id) && !live.contains(&id) {
                live.push(id);
            }
        }
    };
    for bb in func.block_ids() {
        let inside = members.contains(&bb);
        for &iid in &func.block(bb).insts {
            let inst = func.inst(iid);
            if inside {
                // Loop-carried values: an entry-block φ fed from inside the
                // region along a non-region (back) edge.
                if bb == region.entry() && inst.is_phi() {
                    for (v, pb) in inst.args.iter().zip(&inst.phi_blocks) {
                        if members.contains(pb) && !region.edges.contains(&(*pb, bb)) {
                            mark(*v, &mut live);
                        }
                    }
                }
                continue; // other in-region uses are internal
            }
            for a in &inst.args {
                mark(*a, &mut live);
            }
        }
        // Terminators of external blocks, and of the exit block (its branch
        // condition is resolved by the host after the frame returns).
        if !inside || bb == region.exit() {
            match &func.block(bb).term {
                Terminator::CondBr { cond, .. } => mark(*cond, &mut live),
                Terminator::Ret(Some(v)) => mark(*v, &mut live),
                _ => {}
            }
        }
    }
    live.sort();
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::Type;
    use needle_ir::Value as V;

    /// head(i=φ) -> body(x = a[i]*k) -> latch(i+1) loop; region = body..latch.
    #[test]
    fn loop_body_live_boundary() {
        let mut fb = FunctionBuilder::new("f", &[Type::Ptr, Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let latch = fb.block("latch");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, V::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(1));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(fb.arg(0), i, 8);
        let x = fb.load(Type::I64, addr);
        let y = fb.mul(x, V::int(3));
        fb.store(y, addr);
        fb.br(latch);
        fb.switch_to(latch);
        let i2 = fb.add(i, V::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(latch);

        // Region: body -> latch (one loop iteration after the head test).
        let region = needle_regions::OffloadRegion::from_path(&[body, latch], 10, 0.9);
        region.validate(&f).unwrap();
        let ins = live_ins(&f, &region);
        // i (φ at head, outside) and arg0 (base pointer) feed the region.
        assert!(ins.contains(&i));
        assert!(ins.contains(&V::Arg(0)));
        assert!(!ins.iter().any(|v| matches!(v, V::Const(_))));
        let outs = live_outs(&f, &region);
        // i2 feeds the head φ (an external use).
        assert_eq!(outs, vec![i2.as_inst().unwrap()]);
    }

    /// Region covering head..body: the head φ is a live-in; the
    /// loop-carried update i2 is a live-out.
    #[test]
    fn entry_phi_is_live_in_and_update_is_live_out() {
        let mut fb = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(entry);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(Type::I64, &[(entry, V::int(0))]);
        let c = fb.icmp_slt(i, fb.arg(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, V::int(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let mut f = fb.finish();
        let i_id = i.as_inst().unwrap();
        f.inst_mut(i_id).args.push(i2);
        f.inst_mut(i_id).phi_blocks.push(body);

        let region = needle_regions::OffloadRegion::from_path(&[head, body], 5, 0.8);
        let ins = live_ins(&f, &region);
        assert_eq!(ins[0], i, "entry φ is the first live-in");
        assert!(ins.contains(&V::Arg(0)));
        let outs = live_outs(&f, &region);
        // i escapes (ret at exit); i2 escapes as the loop-carried update.
        assert!(outs.contains(&i_id));
        assert!(outs.contains(&i2.as_inst().unwrap()));
        assert_eq!(outs.len(), 2);
    }
}
