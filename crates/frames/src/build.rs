//! Frame construction from offload regions (§V, Figure 8).

use std::collections::HashMap;
use std::fmt;

use needle_ir::{BlockId, Constant, Function, InstId, Op, Terminator, Type, Value};
use needle_regions::OffloadRegion;

use crate::frame::{Frame, FrameOp, FrameOpKind, FrameValue, LiveIn, LiveOut};
use crate::liveness::{live_ins, live_outs};

/// Frame construction failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The region failed structural validation.
    InvalidRegion(String),
    /// The region contains a call (Needle inlines call chains before region
    /// formation; un-inlined calls cannot be offloaded).
    CallInRegion(InstId),
    /// A φ inside the region had no in-region incoming edge.
    PhiUnresolved(InstId),
    /// An operand was neither a region-internal def nor a registered
    /// live-in (region blocks out of dataflow order, or a liveness bug).
    UnresolvedValue(Value),
    /// A live-out instruction was never lowered into the frame.
    LiveOutUnmapped(InstId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidRegion(m) => write!(f, "invalid region: {m}"),
            BuildError::CallInRegion(i) => write!(f, "call {i} inside offload region"),
            BuildError::PhiUnresolved(i) => write!(f, "phi {i} has no in-region incoming"),
            BuildError::UnresolvedValue(v) => {
                write!(f, "operand {v:?} is neither region-defined nor a live-in")
            }
            BuildError::LiveOutUnmapped(i) => {
                write!(f, "live-out {i} was never lowered into the frame")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Build a software frame from `region` of `func`.
///
/// Along a single flow of control φs cancel into copies; at Braid-internal
/// merge points they lower to predicated selects. Region branches with one
/// side outside become [guards](FrameOpKind::Guard); branches with both
/// sides inside drive block predicates. Stores are counted into the undo
/// log.
///
/// # Errors
/// See [`BuildError`].
pub fn build_frame(func: &Function, region: &OffloadRegion) -> Result<Frame, BuildError> {
    region
        .validate(func)
        .map_err(BuildError::InvalidRegion)?;

    let ins = live_ins(func, region);
    let mut b = Builder {
        func,
        region,
        ops: Vec::new(),
        guards: Vec::new(),
        inst_map: HashMap::new(),
        arg_map: HashMap::new(),
        block_pred: HashMap::new(),
        edge_pred: HashMap::new(),
        phis_cancelled: 0,
        undo_log_size: 0,
    };
    let live_in_meta: Vec<LiveIn> = ins
        .iter()
        .map(|v| LiveIn {
            value: *v,
            ty: func.value_type(*v),
        })
        .collect();
    for (idx, v) in ins.iter().enumerate() {
        match v {
            Value::Arg(n) => {
                b.arg_map.insert(*n, FrameValue::LiveIn(idx));
            }
            Value::Inst(id) => {
                b.inst_map.insert(*id, FrameValue::LiveIn(idx));
            }
            Value::Const(_) => unreachable!("constants are never live-ins"),
        }
    }

    b.block_pred.insert(region.entry(), FrameValue::TRUE);
    let blocks = region.blocks.clone();
    for &bb in &blocks {
        b.lower_block(bb)?;
    }

    let outs = live_outs(func, region);
    let mut live_outs = Vec::with_capacity(outs.len());
    for inst in outs {
        let value = *b
            .inst_map
            .get(&inst)
            .ok_or(BuildError::LiveOutUnmapped(inst))?;
        live_outs.push(LiveOut { inst, value });
    }

    // Loop-carried pairs: an entry-block φ (a live-in) whose incoming value
    // along a back edge from inside the region is one of the live-outs.
    let live_outs: Vec<LiveOut> = live_outs;
    let mut loop_carried = Vec::new();
    let members: std::collections::BTreeSet<_> = region.blocks.iter().copied().collect();
    for (li_idx, li) in ins.iter().enumerate() {
        let Value::Inst(phi_id) = li else { continue };
        let inst = func.inst(*phi_id);
        if !inst.is_phi() {
            continue;
        }
        for (v, pb) in inst.args.iter().zip(&inst.phi_blocks) {
            if members.contains(pb) && !region.edges.contains(&(*pb, region.entry())) {
                if let Value::Inst(update) = v {
                    if let Some(lo_idx) = live_outs.iter().position(|lo| lo.inst == *update) {
                        loop_carried.push((li_idx, lo_idx));
                    }
                }
            }
        }
    }

    let frame = Frame {
        ops: b.ops,
        live_ins: live_in_meta,
        live_outs,
        guards: b.guards,
        phis_cancelled: b.phis_cancelled,
        undo_log_size: b.undo_log_size,
        loop_carried,
        region: region.clone(),
    };
    debug_assert_eq!(frame.validate(), Ok(()));
    Ok(frame)
}

struct Builder<'a> {
    func: &'a Function,
    region: &'a OffloadRegion,
    ops: Vec<FrameOp>,
    guards: Vec<usize>,
    inst_map: HashMap<InstId, FrameValue>,
    arg_map: HashMap<u32, FrameValue>,
    block_pred: HashMap<BlockId, FrameValue>,
    edge_pred: HashMap<(BlockId, BlockId), FrameValue>,
    phis_cancelled: usize,
    undo_log_size: usize,
}

impl Builder<'_> {
    fn emit(&mut self, op: FrameOp) -> FrameValue {
        self.ops.push(op);
        FrameValue::Op(self.ops.len() - 1)
    }

    fn emit_compute(&mut self, op: Op, ty: Type, args: Vec<FrameValue>) -> FrameValue {
        self.emit(FrameOp {
            kind: FrameOpKind::Compute(op),
            args,
            ty,
            pred: None,
            src: None,
            imm: 0,
        })
    }

    fn resolve(&self, v: Value) -> Result<FrameValue, BuildError> {
        match v {
            Value::Const(c) => Ok(FrameValue::Const(c)),
            Value::Arg(n) => self
                .arg_map
                .get(&n)
                .copied()
                .ok_or(BuildError::UnresolvedValue(v)),
            Value::Inst(id) => self
                .inst_map
                .get(&id)
                .copied()
                .ok_or(BuildError::UnresolvedValue(v)),
        }
    }

    fn not(&mut self, v: FrameValue) -> FrameValue {
        self.emit_compute(
            Op::Xor,
            Type::I1,
            vec![v, FrameValue::Const(Constant::Int(1))],
        )
    }

    fn and(&mut self, a: FrameValue, b: FrameValue) -> FrameValue {
        if a == FrameValue::TRUE {
            return b;
        }
        if b == FrameValue::TRUE {
            return a;
        }
        self.emit_compute(Op::And, Type::I1, vec![a, b])
    }

    fn or(&mut self, a: FrameValue, b: FrameValue) -> FrameValue {
        if a == FrameValue::TRUE || b == FrameValue::TRUE {
            return FrameValue::TRUE;
        }
        self.emit_compute(Op::Or, Type::I1, vec![a, b])
    }

    fn lower_block(&mut self, bb: BlockId) -> Result<(), BuildError> {
        // Block predicate: OR of incoming in-region edge predicates
        // (computed when the predecessors were lowered).
        if bb != self.region.entry() {
            let mut incoming = Vec::new();
            for e in self.region.edges.iter().filter(|(_, t)| *t == bb) {
                incoming.push(self.edge_pred.get(e).copied().ok_or_else(|| {
                    BuildError::InvalidRegion(format!(
                        "edge {:?} -> {:?} reached before its source was lowered",
                        e.0, e.1
                    ))
                })?);
            }
            let pred = incoming
                .into_iter()
                .reduce(|a, c| self.or(a, c))
                .ok_or_else(|| {
                    BuildError::InvalidRegion(format!("non-entry block {bb} has no incoming edges"))
                })?;
            self.block_pred.insert(bb, pred);
        }
        let pred = self.block_pred[&bb];
        let pred_opt = if pred == FrameValue::TRUE {
            None
        } else {
            Some(pred)
        };

        // Instructions.
        let func = self.func;
        for &iid in &func.block(bb).insts {
            let inst = func.inst(iid);
            match inst.op {
                Op::Phi => {
                    if bb == self.region.entry() {
                        continue; // entry φs are live-ins, registered already
                    }
                    let mut incomings: Vec<(FrameValue, FrameValue)> = Vec::new();
                    for (v, pb) in inst.args.iter().zip(&inst.phi_blocks) {
                        if !self.region.edges.contains(&(*pb, bb)) {
                            continue;
                        }
                        let ep = self
                            .edge_pred
                            .get(&(*pb, bb))
                            .copied()
                            .ok_or(BuildError::PhiUnresolved(iid))?;
                        incomings.push((ep, self.resolve(*v)?));
                    }
                    let fv = match incomings.as_slice() {
                        [] => return Err(BuildError::PhiUnresolved(iid)),
                        [(_, only)] => {
                            // single flow of control: the φ cancels
                            self.phis_cancelled += 1;
                            *only
                        }
                        [rest @ .., (_, default)] => {
                            // Braid merge: fold predicated selects. The last
                            // incoming is the default; earlier ones select on
                            // their edge predicate.
                            let mut acc = *default;
                            for (ep, v) in rest.iter().rev() {
                                acc = self.emit_compute(
                                    Op::Select,
                                    inst.ty,
                                    vec![*ep, *v, acc],
                                );
                            }
                            acc
                        }
                    };
                    self.inst_map.insert(iid, fv);
                }
                Op::Call(_) => return Err(BuildError::CallInRegion(iid)),
                Op::Load => {
                    let args = vec![self.resolve(inst.args[0])?];
                    let fv = self.emit(FrameOp {
                        kind: FrameOpKind::Load,
                        args,
                        ty: inst.ty,
                        pred: pred_opt,
                        src: Some(iid),
                        imm: 0,
                    });
                    self.inst_map.insert(iid, fv);
                }
                Op::Store => {
                    self.undo_log_size += 1;
                    let args = vec![self.resolve(inst.args[0])?, self.resolve(inst.args[1])?];
                    let fv = self.emit(FrameOp {
                        kind: FrameOpKind::Store,
                        args,
                        ty: inst.ty,
                        pred: pred_opt,
                        src: Some(iid),
                        imm: 0,
                    });
                    self.inst_map.insert(iid, fv);
                }
                op => {
                    let args = inst
                        .args
                        .iter()
                        .map(|a| self.resolve(*a))
                        .collect::<Result<Vec<_>, _>>()?;
                    let fv = self.emit(FrameOp {
                        kind: FrameOpKind::Compute(op),
                        args,
                        ty: inst.ty,
                        pred: pred_opt,
                        src: Some(iid),
                        imm: inst.imm,
                    });
                    self.inst_map.insert(iid, fv);
                }
            }
        }

        // Terminator: guards and outgoing edge predicates.
        if bb == self.region.exit() {
            return Ok(());
        }
        match &func.block(bb).term {
            Terminator::Br(t) => {
                if self.region.edges.contains(&(bb, *t)) {
                    self.edge_pred.insert((bb, *t), pred);
                }
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.resolve(*cond)?;
                let t_in = self.region.edges.contains(&(bb, *then_bb));
                let e_in = self.region.edges.contains(&(bb, *else_bb));
                if then_bb == else_bb {
                    // Degenerate: effectively unconditional.
                    if t_in {
                        self.edge_pred.insert((bb, *then_bb), pred);
                    }
                } else if t_in && e_in {
                    // Internal IF: both sides folded in; the branch becomes
                    // dataflow predication.
                    let ep_t = self.and(pred, c);
                    self.edge_pred.insert((bb, *then_bb), ep_t);
                    let nc = self.not(c);
                    let ep_e = self.and(pred, nc);
                    self.edge_pred.insert((bb, *else_bb), ep_e);
                } else {
                    // Guard: exactly one side stays inside.
                    let expected = t_in;
                    let g = self.emit(FrameOp {
                        kind: FrameOpKind::Guard { expected },
                        args: vec![c],
                        ty: Type::I1,
                        pred: pred_opt,
                        src: None,
                        imm: 0,
                    });
                    let FrameValue::Op(gi) = g else {
                        return Err(BuildError::InvalidRegion(
                            "guard emission produced a non-op value".into(),
                        ));
                    };
                    self.guards.push(gi);
                    let inside = if t_in { *then_bb } else { *else_bb };
                    self.edge_pred.insert((bb, inside), pred);
                }
            }
            Terminator::Ret(_) | Terminator::Unreachable => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::Value as V;

    /// Build the Figure 8-style function:
    /// p0: z=x+y; c=a+b; w=z+c; if w>10 { s=w+1; store } else cold
    fn figure8() -> (Function, OffloadRegion) {
        let mut fb = FunctionBuilder::new(
            "fig8",
            &[Type::I64, Type::I64, Type::I64, Type::I64, Type::Ptr],
            Some(Type::I64),
        );
        let entry = fb.entry();
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        let done = fb.block("done");
        let (x, y, a, bv, p) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3), fb.arg(4));
        fb.switch_to(entry);
        let z = fb.add(x, y);
        let c = fb.add(a, bv);
        let w = fb.add(z, c);
        let cnd = fb.icmp_sgt(w, V::int(10));
        fb.cond_br(cnd, hot, cold);
        fb.switch_to(hot);
        let s = fb.add(w, V::int(1));
        fb.store(s, p);
        fb.br(done);
        fb.switch_to(cold);
        let t = fb.sub(w, V::int(1));
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(hot, s), (cold, t)]);
        fb.ret(Some(r));
        let f = fb.finish();
        let region = OffloadRegion::from_path(
            &[BlockId(0), BlockId(1), BlockId(3)],
            100,
            0.9,
        );
        (f, region)
    }

    #[test]
    fn path_frame_has_guard_and_cancelled_phi() {
        let (f, region) = figure8();
        let frame = build_frame(&f, &region).unwrap();
        frame.validate().unwrap();
        assert_eq!(frame.guards.len(), 1);
        assert_eq!(frame.phis_cancelled, 1); // the φ at `done` cancels
        assert_eq!(frame.undo_log_size, 1); // one store
        assert_eq!(frame.live_ins.len(), 5); // x,y,a,b,p
        // Live-outs: r (the φ, returned at the exit) and w (consumed by the
        // external cold block — conservative liveness keeps it).
        assert_eq!(frame.live_outs.len(), 2);
        // Ops: z,c,w,cnd,guard,s,store = 7 (φ cancelled, no pred logic).
        assert_eq!(frame.num_ops(), 7);
        assert_eq!(frame.num_mem_ops(), 1);
    }

    #[test]
    fn braid_frame_predicates_both_arms() {
        let (f, _) = figure8();
        // Braid merges hot and cold arms.
        let mut region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 100, 0.9);
        region.blocks = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        region.edges.insert((BlockId(0), BlockId(2)));
        region.edges.insert((BlockId(2), BlockId(3)));
        let frame = build_frame(&f, &region).unwrap();
        frame.validate().unwrap();
        // No guards: the only branch is internal now.
        assert!(frame.guards.is_empty());
        // The φ lowers to a select rather than cancelling.
        assert_eq!(frame.phis_cancelled, 0);
        assert!(frame
            .ops
            .iter()
            .any(|o| matches!(o.kind, FrameOpKind::Compute(Op::Select))));
        // The store in the hot arm is predicated.
        let store = frame
            .ops
            .iter()
            .find(|o| matches!(o.kind, FrameOpKind::Store))
            .unwrap();
        assert!(store.pred.is_some());
    }

    #[test]
    fn call_in_region_is_rejected() {
        let mut fb = FunctionBuilder::new("callee", &[], None);
        fb.ret(None);
        let callee = fb.finish();
        let mut m = needle_ir::Module::new("t");
        let cid = m.push(callee);
        let mut fb = FunctionBuilder::new("caller", &[], None);
        fb.call(cid, Type::I64, &[]);
        fb.ret(None);
        let f = fb.finish();
        let region = OffloadRegion::from_path(&[BlockId(0)], 1, 1.0);
        assert!(matches!(
            build_frame(&f, &region),
            Err(BuildError::CallInRegion(_))
        ));
    }

    #[test]
    fn invalid_region_is_rejected() {
        let (f, _) = figure8();
        let bad = OffloadRegion::from_path(&[BlockId(0), BlockId(0)], 1, 0.0);
        assert!(matches!(
            build_frame(&f, &bad),
            Err(BuildError::InvalidRegion(_))
        ));
    }

    #[test]
    fn guard_expected_direction_tracks_region_side() {
        let (f, _) = figure8();
        // Path through the *cold* side: guard expects `false`.
        let region = OffloadRegion::from_path(&[BlockId(0), BlockId(2), BlockId(3)], 1, 0.1);
        let frame = build_frame(&f, &region).unwrap();
        let g = &frame.ops[frame.guards[0]];
        assert_eq!(g.kind, FrameOpKind::Guard { expected: false });
    }
}
