//! A small in-house CDCL SAT solver.
//!
//! Just enough solver to discharge bit-blasted equivalence obligations
//! offline: two-watched-literal propagation, first-UIP conflict
//! analysis with clause learning and non-chronological backjumping,
//! VSIDS-style activity decisions, geometric restarts, and a conflict
//! budget that turns "too hard" into an honest [`SatResult::Unknown`]
//! instead of an unbounded search.
//!
//! Literals use the DIMACS convention at the API boundary: variable `v`
//! (1-based) appears as `+v` / `-v`.

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; `model[v-1]` is the value of variable `v`.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Conflicts hit.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

const UNASSIGNED: i8 = 2;

/// The CDCL solver. Add clauses, then call [`Solver::solve`] once.
pub struct Solver {
    n_vars: usize,
    clauses: Vec<Vec<u32>>,       // literal encoding: var<<1 | sign (1 = negated)
    watches: Vec<Vec<u32>>,       // per-literal watched clause indices
    assign: Vec<i8>,              // 0 false, 1 true, 2 unassigned (per var)
    level: Vec<u32>,
    reason: Vec<i32>,             // clause index, or -1 for decisions/units
    trail: Vec<u32>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    order: Vec<(u64, u32)>,       // lazy max-heap of (activity bits, var)
    unsat_at_root: bool,
    /// Search statistics, valid after `solve`.
    pub stats: SolverStats,
}

fn lit_of(dimacs: i32) -> u32 {
    let v = dimacs.unsigned_abs() - 1;
    (v << 1) | u32::from(dimacs < 0)
}

fn var(lit: u32) -> usize {
    (lit >> 1) as usize
}

fn sign(lit: u32) -> i8 {
    // The value that makes this literal true.
    if lit & 1 == 0 {
        1
    } else {
        0
    }
}

impl Solver {
    /// A solver over `n_vars` variables (DIMACS ids `1..=n_vars`).
    pub fn new(n_vars: usize) -> Solver {
        Solver {
            n_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); n_vars * 2],
            assign: vec![UNASSIGNED; n_vars],
            level: vec![0; n_vars],
            reason: vec![-1; n_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; n_vars],
            act_inc: 1.0,
            order: Vec::new(),
            unsat_at_root: false,
            stats: SolverStats::default(),
        }
    }

    fn value(&self, lit: u32) -> i8 {
        let a = self.assign[var(lit)];
        if a == UNASSIGNED {
            UNASSIGNED
        } else if a == sign(lit) {
            1
        } else {
            0
        }
    }

    /// Add a clause of DIMACS literals. Returns `false` if the clause
    /// set is already unsatisfiable at the root level.
    pub fn add_clause(&mut self, lits: &[i32]) -> bool {
        if self.unsat_at_root {
            return false;
        }
        let mut clause: Vec<u32> = Vec::with_capacity(lits.len());
        for &d in lits {
            debug_assert!(d != 0 && d.unsigned_abs() as usize <= self.n_vars);
            let l = lit_of(d);
            if clause.contains(&(l ^ 1)) {
                return true; // tautology
            }
            if !clause.contains(&l) {
                clause.push(l);
            }
        }
        // Root-level simplification: drop false literals, detect sat.
        clause.retain(|&l| self.value(l) != 0);
        if clause.iter().any(|&l| self.value(l) == 1) {
            return true;
        }
        match clause.len() {
            0 => {
                self.unsat_at_root = true;
                false
            }
            1 => {
                self.enqueue(clause[0], -1);
                if self.propagate().is_some() {
                    self.unsat_at_root = true;
                    return false;
                }
                true
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[clause[0] as usize].push(ci);
                self.watches[clause[1] as usize].push(ci);
                self.clauses.push(clause);
                true
            }
        }
    }

    fn enqueue(&mut self, lit: u32, reason: i32) {
        let v = var(lit);
        self.assign[v] = sign(lit);
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Propagate; returns a conflicting clause index if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let falsified = lit ^ 1;
            let mut ws = std::mem::take(&mut self.watches[falsified as usize]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Ensure the falsified literal sits at slot 1.
                let (sat, new_watch) = {
                    let c = &mut self.clauses[ci as usize];
                    if c[0] == falsified {
                        c.swap(0, 1);
                    }
                    if self.assign[var(c[0])] != UNASSIGNED
                        && self.assign[var(c[0])] == sign(c[0])
                    {
                        (true, None)
                    } else {
                        let found = c.iter().enumerate().skip(2).find_map(|(k, &lit)| {
                            let a = self.assign[var(lit)];
                            (a == UNASSIGNED || a == sign(lit)).then_some(k)
                        });
                        (false, found)
                    }
                };
                if sat {
                    i += 1;
                    continue;
                }
                if let Some(k) = new_watch {
                    let c = &mut self.clauses[ci as usize];
                    c.swap(1, k);
                    let moved = c[1];
                    self.watches[moved as usize].push(ci);
                    ws.swap_remove(i);
                    continue;
                }
                // Unit or conflicting on c[0].
                let first = self.clauses[ci as usize][0];
                match self.value(first) {
                    UNASSIGNED => {
                        self.enqueue(first, ci as i32);
                        i += 1;
                    }
                    0 => {
                        // Conflict: restore remaining watches and report.
                        self.watches[falsified as usize].append(&mut ws);
                        return Some(ci);
                    }
                    _ => {
                        i += 1;
                    }
                }
            }
            self.watches[falsified as usize] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.push((self.activity[v].to_bits(), v as u32));
    }

    /// First-UIP conflict analysis; returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<u32>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut seen = vec![false; self.n_vars];
        let mut learned: Vec<u32> = vec![0]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut ci = conflict as i32;
        let mut trail_idx = self.trail.len();
        let mut p_var = usize::MAX; // variable being resolved on

        loop {
            debug_assert!(ci >= 0);
            let clause = self.clauses[ci as usize].clone();
            for &l in &clause {
                let v = var(l);
                // Skip the pivot and anything already seen or root-level.
                if v == p_var || seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump(v);
                if self.level[v] == cur_level {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                trail_idx -= 1;
                if seen[var(self.trail[trail_idx])] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            p_var = var(lit);
            seen[p_var] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = lit ^ 1;
                break;
            }
            ci = self.reason[p_var];
        }
        let backjump = learned[1..]
            .iter()
            .map(|&l| self.level[var(l)])
            .max()
            .unwrap_or(0);
        (learned, backjump)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.trail_lim.len() as u32 > to_level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let lit = self.trail.pop().unwrap();
                let v = var(lit);
                self.assign[v] = UNASSIGNED;
                self.reason[v] = -1;
                self.order.push((self.activity[v].to_bits(), v as u32));
            }
        }
        self.prop_head = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<u32> {
        while let Some((act, v)) = self.order.pop() {
            let vu = v as usize;
            if self.assign[vu] == UNASSIGNED && act == self.activity[vu].to_bits() {
                return Some(v);
            }
        }
        // Heap drained (stale entries only): linear fallback.
        (0..self.n_vars as u32).find(|&v| self.assign[v as usize] == UNASSIGNED)
    }

    /// Run the search with a conflict budget.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat_at_root {
            return SatResult::Unsat;
        }
        for v in 0..self.n_vars as u32 {
            self.order.push((self.activity[v as usize].to_bits(), v));
        }
        self.order.sort_unstable();
        let mut restart_limit = 128u64;
        let mut conflicts_here = 0u64;
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.stats.conflicts >= max_conflicts {
                    return SatResult::Unknown;
                }
                if self.trail_lim.is_empty() {
                    return SatResult::Unsat;
                }
                let (mut learned, backjump) = self.analyze(conflict);
                self.backtrack(backjump);
                self.act_inc *= 1.05;
                self.stats.learned += 1;
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    self.enqueue(assert_lit, -1);
                } else {
                    // Watch the asserting literal plus one literal from the
                    // backjump level, so the clause stays asserting.
                    if let Some(k) =
                        (1..learned.len()).find(|&k| self.level[var(learned[k])] == backjump)
                    {
                        learned.swap(1, k);
                    }
                    let ci = self.clauses.len() as u32;
                    self.watches[learned[0] as usize].push(ci);
                    self.watches[learned[1] as usize].push(ci);
                    self.clauses.push(learned);
                    self.enqueue(assert_lit, ci as i32);
                }
                if conflicts_here >= restart_limit {
                    conflicts_here = 0;
                    restart_limit = restart_limit.saturating_mul(3) / 2;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model = (0..self.n_vars).map(|v| self.assign[v] == 1).collect();
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        // Negative phase first: bit-vectors love zeros.
                        self.enqueue((v << 1) | 1, -1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(n: usize, clauses: &[Vec<i32>]) -> Option<Vec<bool>> {
        'outer: for bits in 0u32..(1 << n) {
            let val = |d: i32| -> bool {
                let v = (d.unsigned_abs() - 1) as usize;
                let b = bits >> v & 1 == 1;
                if d > 0 {
                    b
                } else {
                    !b
                }
            };
            for c in clauses {
                if !c.iter().any(|&d| val(d)) {
                    continue 'outer;
                }
            }
            return Some((0..n).map(|v| bits >> v & 1 == 1).collect());
        }
        None
    }

    fn check(n: usize, clauses: &[Vec<i32>]) {
        let mut s = Solver::new(n);
        let mut root_unsat = false;
        for c in clauses {
            if !s.add_clause(c) {
                root_unsat = true;
                break;
            }
        }
        let got = if root_unsat {
            SatResult::Unsat
        } else {
            s.solve(100_000)
        };
        match (brute_force(n, clauses), got) {
            (Some(_), SatResult::Sat(model)) => {
                for c in clauses {
                    assert!(
                        c.iter().any(|&d| {
                            let v = (d.unsigned_abs() - 1) as usize;
                            if d > 0 {
                                model[v]
                            } else {
                                !model[v]
                            }
                        }),
                        "model violates clause {c:?}"
                    );
                }
            }
            (None, SatResult::Unsat) => {}
            (expected, got) => panic!("brute force {expected:?} vs solver {got:?}"),
        }
    }

    #[test]
    fn trivial_cases() {
        check(1, &[vec![1]]);
        check(1, &[vec![1], vec![-1]]);
        check(2, &[vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]);
        check(3, &[vec![1, 2, 3], vec![-1], vec![-2]]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Pigeon i in hole j = var 1 + i*2 + j (3 pigeons, 2 holes).
        let p = |i: i32, j: i32| 1 + i * 2 + j;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        check(6, &clauses);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift instance generator.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let n = 4 + (next() % 9) as usize; // 4..=12 vars
            let m = n * 4;
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % n as u64) as i32 + 1;
                            if next() & 1 == 0 {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            check(n, &clauses);
            let _ = round;
        }
    }
}
