//! Tseitin bit-blasting of 64-bit terms to CNF.
//!
//! Each term becomes a vector of 64 literals (LSB first); constants map
//! to a reserved always-true variable so constant bits cost no clauses.
//! Adders are ripple-carry, multiplication is shift-and-add over the
//! partial-product triangle, variable shifts are 6-stage barrel
//! shifters over the masked amount bits (`rhs & 63`), and signed
//! comparisons combine the sign bits with an unsigned borrow chain —
//! all exactly matching the wrapping `i64` semantics of
//! [`super::term::fold_bin`].
//!
//! A clause budget turns oversized encodings into
//! [`BlastError::ClauseBudget`], which the certifier reports as a
//! `Timeout` (fall back to the differential probe) rather than an
//! unbounded memory grab.

use std::collections::HashMap;

use super::term::{Bin, Node, Pool, TermId};
use needle_ir::CmpOp;

/// Why an obligation could not be blasted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastError {
    /// The CNF grew past the configured clause budget.
    ClauseBudget,
    /// The term graph contains something the blaster cannot encode
    /// (symbolic division, an unlowered memory read).
    Unsupported(&'static str),
}

impl std::fmt::Display for BlastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlastError::ClauseBudget => write!(f, "clause budget exhausted"),
            BlastError::Unsupported(what) => write!(f, "unsupported term: {what}"),
        }
    }
}

type Bits = [i32; 64];

/// The CNF under construction plus the term → literal maps.
pub struct Blaster<'p> {
    pool: &'p Pool,
    n_vars: i32,
    lit_true: i32,
    clauses: Vec<Vec<i32>>,
    max_clauses: usize,
    bits: HashMap<TermId, Bits>,
    truth_memo: HashMap<TermId, i32>,
    var_bits: HashMap<u32, Bits>,
}

impl<'p> Blaster<'p> {
    /// A blaster over `pool`'s terms with a clause budget.
    pub fn new(pool: &'p Pool, max_clauses: usize) -> Blaster<'p> {
        let mut b = Blaster {
            pool,
            n_vars: 1,
            lit_true: 1,
            clauses: Vec::new(),
            max_clauses,
            bits: HashMap::new(),
            truth_memo: HashMap::new(),
            var_bits: HashMap::new(),
        };
        b.clauses.push(vec![b.lit_true]);
        b
    }

    /// Variables allocated so far.
    pub fn var_count(&self) -> usize {
        self.n_vars as usize
    }

    /// Clauses emitted so far.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    fn fresh(&mut self) -> i32 {
        self.n_vars += 1;
        self.n_vars
    }

    fn clause(&mut self, lits: Vec<i32>) -> Result<(), BlastError> {
        if self.clauses.len() >= self.max_clauses {
            return Err(BlastError::ClauseBudget);
        }
        self.clauses.push(lits);
        Ok(())
    }

    fn const_lit(&self, v: bool) -> i32 {
        if v {
            self.lit_true
        } else {
            -self.lit_true
        }
    }

    fn is_const(&self, l: i32) -> Option<bool> {
        if l == self.lit_true {
            Some(true)
        } else if l == -self.lit_true {
            Some(false)
        } else {
            None
        }
    }

    fn and_gate(&mut self, a: i32, b: i32) -> Result<i32, BlastError> {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return Ok(self.const_lit(false)),
            (Some(true), _) => return Ok(b),
            (_, Some(true)) => return Ok(a),
            _ => {}
        }
        if a == b {
            return Ok(a);
        }
        if a == -b {
            return Ok(self.const_lit(false));
        }
        let g = self.fresh();
        self.clause(vec![-g, a])?;
        self.clause(vec![-g, b])?;
        self.clause(vec![g, -a, -b])?;
        Ok(g)
    }

    fn or_gate(&mut self, a: i32, b: i32) -> Result<i32, BlastError> {
        let g = self.and_gate(-a, -b)?;
        Ok(-g)
    }

    fn xor_gate(&mut self, a: i32, b: i32) -> Result<i32, BlastError> {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return Ok(b),
            (_, Some(false)) => return Ok(a),
            (Some(true), _) => return Ok(-b),
            (_, Some(true)) => return Ok(-a),
            _ => {}
        }
        if a == b {
            return Ok(self.const_lit(false));
        }
        if a == -b {
            return Ok(self.const_lit(true));
        }
        let g = self.fresh();
        self.clause(vec![-g, a, b])?;
        self.clause(vec![-g, -a, -b])?;
        self.clause(vec![g, a, -b])?;
        self.clause(vec![g, -a, b])?;
        Ok(g)
    }

    fn mux(&mut self, c: i32, t: i32, e: i32) -> Result<i32, BlastError> {
        match self.is_const(c) {
            Some(true) => return Ok(t),
            Some(false) => return Ok(e),
            None => {}
        }
        if t == e {
            return Ok(t);
        }
        let ct = self.and_gate(c, t)?;
        let ce = self.and_gate(-c, e)?;
        self.or_gate(ct, ce)
    }

    fn or_many(&mut self, lits: &[i32]) -> Result<i32, BlastError> {
        let mut live: Vec<i32> = Vec::new();
        for &l in lits {
            match self.is_const(l) {
                Some(true) => return Ok(self.const_lit(true)),
                Some(false) => {}
                None => {
                    if !live.contains(&l) {
                        live.push(l);
                    }
                }
            }
        }
        match live.len() {
            0 => Ok(self.const_lit(false)),
            1 => Ok(live[0]),
            _ => {
                let g = self.fresh();
                for &l in &live {
                    self.clause(vec![-l, g])?;
                }
                let mut big = live;
                big.push(-g);
                self.clause(big)?;
                Ok(g)
            }
        }
    }

    /// `(sum, carry_out)` of a full adder.
    fn full_adder(&mut self, a: i32, b: i32, cin: i32) -> Result<(i32, i32), BlastError> {
        let ab = self.xor_gate(a, b)?;
        let sum = self.xor_gate(ab, cin)?;
        let c1 = self.and_gate(a, b)?;
        let c2 = self.and_gate(ab, cin)?;
        let cout = self.or_gate(c1, c2)?;
        Ok((sum, cout))
    }

    /// `a + b + cin`; returns the 64 sum bits and the final carry.
    fn add_vec(&mut self, a: &Bits, b: &Bits, mut carry: i32) -> Result<(Bits, i32), BlastError> {
        let mut out = [self.const_lit(false); 64];
        for i in 0..64 {
            let (s, c) = self.full_adder(a[i], b[i], carry)?;
            out[i] = s;
            carry = c;
        }
        Ok((out, carry))
    }

    fn neg_bits(&self, a: &Bits) -> Bits {
        let mut out = *a;
        for l in &mut out {
            *l = -*l;
        }
        out
    }

    /// `a <u b` via the borrow chain of `a + ¬b + 1`.
    fn ult(&mut self, a: &Bits, b: &Bits) -> Result<i32, BlastError> {
        let nb = self.neg_bits(b);
        let one = self.const_lit(true);
        let (_, cout) = self.add_vec(a, &nb, one)?;
        Ok(-cout)
    }

    fn slt(&mut self, a: &Bits, b: &Bits) -> Result<i32, BlastError> {
        let signs_differ = self.xor_gate(a[63], b[63])?;
        let u = self.ult(a, b)?;
        self.mux(signs_differ, a[63], u)
    }

    fn eq_bits(&mut self, a: &Bits, b: &Bits) -> Result<i32, BlastError> {
        let mut diffs = Vec::with_capacity(64);
        for i in 0..64 {
            diffs.push(self.xor_gate(a[i], b[i])?);
        }
        let ne = self.or_many(&diffs)?;
        Ok(-ne)
    }

    fn const_bits(&self, v: u64) -> Bits {
        let mut out = [0i32; 64];
        for (i, l) in out.iter_mut().enumerate() {
            *l = self.const_lit(v >> i & 1 == 1);
        }
        out
    }

    fn shift_const(&self, a: &Bits, amt: u32, op: Bin) -> Bits {
        let amt = (amt & 63) as usize;
        let mut out = [self.const_lit(false); 64];
        match op {
            Bin::Shl => {
                out[amt..64].copy_from_slice(&a[..64 - amt]);
            }
            Bin::LShr => {
                out[..64 - amt].copy_from_slice(&a[amt..]);
            }
            _ => {
                // Arithmetic right shift: replicate the sign bit.
                for i in 0..64 {
                    out[i] = if i + amt < 64 { a[i + amt] } else { a[63] };
                }
            }
        }
        out
    }

    fn shift_barrel(&mut self, a: &Bits, b: &Bits, op: Bin) -> Result<Bits, BlastError> {
        let mut cur = *a;
        for stage in 0..6u32 {
            let shifted = self.shift_const(&cur, 1 << stage, op);
            let sel = b[stage as usize];
            let mut next = [self.const_lit(false); 64];
            for i in 0..64 {
                next[i] = self.mux(sel, shifted[i], cur[i])?;
            }
            cur = next;
        }
        Ok(cur)
    }

    fn mul(&mut self, a: &Bits, b: &Bits) -> Result<Bits, BlastError> {
        let mut acc = self.const_bits(0);
        for i in 0..64 {
            if self.is_const(b[i]) == Some(false) {
                continue;
            }
            // Row i contributes to bits i..64 only (wrapping multiply).
            let mut carry = self.const_lit(false);
            let mut next = acc;
            for j in 0..64 - i {
                let pp = self.and_gate(b[i], a[j])?;
                let (s, c) = self.full_adder(acc[i + j], pp, carry)?;
                next[i + j] = s;
                carry = c;
            }
            acc = next;
        }
        Ok(acc)
    }

    /// Single literal for `t ≠ 0`.
    pub fn truth(&mut self, t: TermId) -> Result<i32, BlastError> {
        if let Some(&l) = self.truth_memo.get(&t) {
            return Ok(l);
        }
        let bits = self.bits(t)?;
        let l = if self.pool.term_is_bool(t) {
            bits[0]
        } else {
            self.or_many(&bits)?
        };
        self.truth_memo.insert(t, l);
        Ok(l)
    }

    /// The 64 literals of `t` (LSB first), building CNF on demand.
    pub fn bits(&mut self, t: TermId) -> Result<Bits, BlastError> {
        if let Some(b) = self.bits.get(&t) {
            return Ok(*b);
        }
        let out: Bits = match self.pool.node(t) {
            Node::Const(v) => self.const_bits(v),
            Node::Var(i) => {
                let mut out = [0i32; 64];
                for l in &mut out {
                    *l = self.fresh();
                }
                self.var_bits.insert(i, out);
                out
            }
            Node::Bin(op, a, b) => {
                let av = self.bits(a)?;
                match op {
                    Bin::Add => {
                        let bv = self.bits(b)?;
                        let zero = self.const_lit(false);
                        self.add_vec(&av, &bv, zero)?.0
                    }
                    Bin::Sub => {
                        let bv = self.bits(b)?;
                        let nb = self.neg_bits(&bv);
                        let one = self.const_lit(true);
                        self.add_vec(&av, &nb, one)?.0
                    }
                    Bin::Mul => {
                        let bv = self.bits(b)?;
                        self.mul(&av, &bv)?
                    }
                    Bin::And | Bin::Or | Bin::Xor => {
                        let bv = self.bits(b)?;
                        let mut out = [0i32; 64];
                        for i in 0..64 {
                            out[i] = match op {
                                Bin::And => self.and_gate(av[i], bv[i])?,
                                Bin::Or => self.or_gate(av[i], bv[i])?,
                                _ => self.xor_gate(av[i], bv[i])?,
                            };
                        }
                        out
                    }
                    Bin::Shl | Bin::Shr | Bin::LShr => {
                        if let Node::Const(amt) = self.pool.node(b) {
                            self.shift_const(&av, amt as u32, op)
                        } else {
                            let bv = self.bits(b)?;
                            self.shift_barrel(&av, &bv, op)?
                        }
                    }
                    Bin::Div | Bin::Rem => {
                        return Err(BlastError::Unsupported("symbolic division"));
                    }
                }
            }
            Node::Cmp(rel, a, b) => {
                let av = self.bits(a)?;
                let bv = self.bits(b)?;
                let l = match rel {
                    CmpOp::Eq => self.eq_bits(&av, &bv)?,
                    CmpOp::Ne => -self.eq_bits(&av, &bv)?,
                    CmpOp::Lt => self.slt(&av, &bv)?,
                    CmpOp::Gt => self.slt(&bv, &av)?,
                    CmpOp::Le => -self.slt(&bv, &av)?,
                    CmpOp::Ge => -self.slt(&av, &bv)?,
                };
                let mut out = [self.const_lit(false); 64];
                out[0] = l;
                out
            }
            Node::Ite(c, th, el) => {
                let ct = self.truth(c)?;
                let tv = self.bits(th)?;
                let ev = self.bits(el)?;
                let mut out = [0i32; 64];
                for i in 0..64 {
                    out[i] = self.mux(ct, tv[i], ev[i])?;
                }
                out
            }
            Node::Sel(..) => {
                return Err(BlastError::Unsupported("memory read survived lowering"));
            }
        };
        self.bits.insert(t, out);
        Ok(out)
    }

    /// Assert that `t` is true (≠ 0).
    pub fn assert_truth(&mut self, t: TermId) -> Result<(), BlastError> {
        let l = self.truth(t)?;
        self.clause(vec![l])
    }

    /// Tear down into `(variable count, clauses, per-variable literal map)`.
    pub fn finish(self) -> (usize, Vec<Vec<i32>>, HashMap<u32, Bits>) {
        (self.n_vars as usize, self.clauses, self.var_bits)
    }
}

/// Read variable `i`'s 64-bit value out of a SAT model.
pub fn decode_var(var_bits: &HashMap<u32, Bits>, model: &[bool], i: u32) -> u64 {
    let Some(bits) = var_bits.get(&i) else {
        return 0; // variable never constrained the formula
    };
    let mut v = 0u64;
    for (k, &l) in bits.iter().enumerate() {
        let idx = (l.unsigned_abs() - 1) as usize;
        let b = model.get(idx).copied().unwrap_or(false);
        let b = if l > 0 { b } else { !b };
        if b {
            v |= 1 << k;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::super::sat::{SatResult, Solver};
    use super::super::term::{fold_bin, fold_cmp, Bin, Pool};
    use super::*;

    /// Assert `lhs == want` is UNSAT to refute / SAT to witness, by
    /// checking the equation `t ≠ expected` has no model.
    fn assert_valid_equation(pool: &Pool, t: TermId, vars: &[(u32, u64)], want: u64) {
        let mut b = Blaster::new(pool, 200_000);
        let bits = b.bits(t).expect("blast");
        // Pin the variables, then assert some output bit differs.
        let mut pins: Vec<(u32, u64)> = vars.to_vec();
        pins.sort_unstable();
        let mut diff = Vec::new();
        let want_bits: Vec<bool> = (0..64).map(|i| want >> i & 1 == 1).collect();
        for i in 0..64 {
            diff.push(if want_bits[i] { -bits[i] } else { bits[i] });
        }
        let (nv, mut clauses, var_bits) = {
            let g = b.or_many(&diff).expect("or");
            b.clause(vec![g]).expect("clause");
            b.finish()
        };
        let mut s = Solver::new(nv);
        let mut ok = true;
        for c in &mut clauses {
            if !s.add_clause(c) {
                ok = false;
                break;
            }
        }
        if ok {
            for (v, val) in pins {
                if let Some(bl) = var_bits.get(&v) {
                    for (i, &l) in bl.iter().enumerate() {
                        let on = val >> i & 1 == 1;
                        if !s.add_clause(&[if on { l } else { -l }]) {
                            ok = false;
                            break;
                        }
                    }
                }
            }
        }
        let res = if ok { s.solve(200_000) } else { SatResult::Unsat };
        assert_eq!(res, SatResult::Unsat, "circuit disagrees with concrete fold");
    }

    #[test]
    fn circuits_match_concrete_folds() {
        let ops = [
            Bin::Add,
            Bin::Sub,
            Bin::Mul,
            Bin::And,
            Bin::Or,
            Bin::Xor,
            Bin::Shl,
            Bin::Shr,
            Bin::LShr,
        ];
        let samples: &[(u64, u64)] = &[
            (0, 0),
            (1, 63),
            (u64::MAX, 1),
            (i64::MIN as u64, 65),
            (0xDEAD_BEEF_0123_4567, 0x8000_0000_0000_0001),
        ];
        for &op in &ops {
            for &(x, y) in samples {
                let mut p = Pool::new();
                let (a, b) = (p.var(0), p.var(1));
                let t = p.bin(op, a, b);
                assert_valid_equation(&p, t, &[(0, x), (1, y)], fold_bin(op, x, y));
            }
        }
    }

    #[test]
    fn comparisons_match_concrete_folds() {
        use needle_ir::CmpOp::*;
        let samples: &[(u64, u64)] = &[
            (0, 0),
            (1, u64::MAX),            // 1 vs -1 signed
            (i64::MIN as u64, 0),     // MIN vs 0
            (5, 5),
            (u64::MAX, i64::MIN as u64),
        ];
        for rel in [Eq, Ne, Lt, Le, Gt, Ge] {
            for &(x, y) in samples {
                let mut p = Pool::new();
                let (a, b) = (p.var(0), p.var(1));
                let t = p.cmp(rel, a, b);
                assert_valid_equation(&p, t, &[(0, x), (1, y)], fold_cmp(rel, x, y));
            }
        }
    }

    #[test]
    fn sat_model_decodes_back_to_witness() {
        // x + 1 == 0 has exactly one solution: x == u64::MAX.
        let mut p = Pool::new();
        let x = p.var(0);
        let one = p.cst(1);
        let zero = p.cst(0);
        let sum = p.bin(Bin::Add, x, one);
        let eq = p.cmp(needle_ir::CmpOp::Eq, sum, zero);
        let mut b = Blaster::new(&p, 100_000);
        b.assert_truth(eq).expect("assert");
        let (nv, clauses, var_bits) = b.finish();
        let mut s = Solver::new(nv);
        for c in &clauses {
            assert!(s.add_clause(c));
        }
        match s.solve(100_000) {
            SatResult::Sat(model) => {
                assert_eq!(decode_var(&var_bits, &model, 0), u64::MAX);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
