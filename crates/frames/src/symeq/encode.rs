//! Translation of frames and regions into the shared term language.
//!
//! Both encoders mirror their concrete twin instruction-for-instruction:
//! [`encode_frame`] follows `exec::run_frame_with` (loads execute
//! unconditionally, stores are predicated, the commit condition is the
//! conjunction of every guard's pass bit), and [`encode_region`] follows
//! `verify::run_reference` (simultaneous φ evaluation on block entry,
//! entry-block φs bound as live-ins, commit = reaching the region exit
//! while staying on region edges). Addresses are reduced to cell
//! indices (`addr >> 3` logical) because [`needle_ir::Memory`] stores
//! whole 8-byte words.
//!
//! Anything outside the integer fragment — float ops, symbolic
//! divisors, calls, loop-carried frames — is reported as
//! [`EncodeStop::Unsupported`] so the certifier can fall back to the
//! differential probe instead of guessing.

use std::collections::HashMap;

use needle_ir::{Function, InstId, Op, Terminator, Type, Value};

use super::term::{Bin, MemId, Node, Pool, TermId};
use crate::frame::{Frame, FrameOpKind, FrameValue};

/// Why encoding stopped without producing obligations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeStop {
    /// The fragment is outside the checker's theory; fall back to the
    /// differential probe.
    Unsupported(String),
    /// A structural budget (paths, steps, terms) was exhausted.
    Budget(String),
    /// The frame itself is malformed (undefined slot, forward/cyclic
    /// reference, missing argument) — a typed error, never a panic.
    Malformed {
        /// Index of the offending op.
        op: usize,
        /// What was wrong with it.
        what: &'static str,
    },
}

/// Symbolic summary of one frame execution.
pub struct FrameEnc {
    /// 0/1 term: every guard passed.
    pub commit: TermId,
    /// One term per [`Frame::live_outs`] entry.
    pub live_outs: Vec<TermId>,
    /// Memory after the op loop (pre-rollback; meaningful under commit).
    pub mem: MemId,
    /// Cell-index terms of every store op (superset of touched cells).
    pub store_cells: Vec<TermId>,
}

/// Symbolic summary of one acyclic control-flow path through a region.
pub struct PathEnc {
    /// 0/1 term: the branch conditions that select this path.
    pub cond: TermId,
    /// Per-live-out term, `None` where the walk does not define it.
    pub live_outs: Vec<Option<TermId>>,
    /// Memory at the region exit along this path.
    pub mem: MemId,
    /// Cell-index terms of the stores executed on this path.
    pub store_cells: Vec<TermId>,
}

/// Symbolic summary of the whole region.
pub struct RegionEnc {
    /// 0/1 term: disjunction of every committing path's condition.
    pub commit: TermId,
    /// The committing paths.
    pub paths: Vec<PathEnc>,
}

fn unsup(what: impl Into<String>) -> EncodeStop {
    EncodeStop::Unsupported(what.into())
}

/// Bits of a constant, or `None` for floats (whose `Val` arithmetic
/// semantics differ from their raw bit pattern).
fn const_bits(c: needle_ir::Constant) -> Option<u64> {
    match c {
        needle_ir::Constant::Int(v) => Some(v as u64),
        needle_ir::Constant::Ptr(p) => Some(p),
        needle_ir::Constant::Float(_) => None,
    }
}

/// Lower a pure integer opcode over term arguments. Returns `None` for
/// anything float-flavoured.
fn pure_term(
    pool: &mut Pool,
    op: Op,
    args: &[TermId],
    imm: i64,
) -> Option<Result<TermId, EncodeStop>> {
    let need = match op {
        Op::Select => 3,
        Op::FSqrt | Op::IToF | Op::FToI => 1,
        _ => 2,
    };
    if args.len() < need {
        return Some(Err(unsup("compute op is missing a required argument")));
    }
    let t = match op {
        Op::Add => pool.bin(Bin::Add, args[0], args[1]),
        Op::Sub => pool.bin(Bin::Sub, args[0], args[1]),
        Op::Mul => pool.bin(Bin::Mul, args[0], args[1]),
        Op::Div => pool.bin(Bin::Div, args[0], args[1]),
        Op::Rem => pool.bin(Bin::Rem, args[0], args[1]),
        Op::And => pool.bin(Bin::And, args[0], args[1]),
        Op::Or => pool.bin(Bin::Or, args[0], args[1]),
        Op::Xor => pool.bin(Bin::Xor, args[0], args[1]),
        Op::Shl => pool.bin(Bin::Shl, args[0], args[1]),
        Op::Shr => pool.bin(Bin::Shr, args[0], args[1]),
        Op::ICmp(rel) => pool.cmp(rel, args[0], args[1]),
        Op::Select => {
            let c = pool.boolify(args[0]);
            pool.ite(c, args[1], args[2])
        }
        Op::Gep => {
            let scale = pool.cst(imm as u64);
            let off = pool.bin(Bin::Mul, args[1], scale);
            pool.bin(Bin::Add, args[0], off)
        }
        _ => return None,
    };
    // Residual Div/Rem nodes (symbolic operands) survive here on
    // purpose: [`crate::symeq::term::lower`] Ackermannizes them into
    // fresh variables under congruence + div-by-zero axioms, which keeps
    // proofs sound while the concrete-replay gate screens any spurious
    // models the abstraction admits.
    Some(Ok(t))
}

fn cell_of(pool: &mut Pool, addr: TermId) -> TermId {
    let three = pool.cst(3);
    pool.bin(Bin::LShr, addr, three)
}

/// Encode `frame` over live-in variables `Var(0..n)`.
///
/// `loop_carried` pairs are deliberately ignored: they describe how
/// live-outs feed live-ins across *successive* invocations, while every
/// certification obligation (frame-vs-region and frame-vs-frame) compares
/// single invocations — exactly what the differential verifier compares.
pub fn encode_frame(pool: &mut Pool, frame: &Frame) -> Result<FrameEnc, EncodeStop> {
    for (i, li) in frame.live_ins.iter().enumerate() {
        if li.ty == Type::F64 {
            return Err(unsup(format!("float live-in {i}")));
        }
        pool.var(i as u32); // reserve the slot
    }
    let n_live = frame.live_ins.len();
    let init = pool.mem_init();

    let mut vals: Vec<TermId> = Vec::with_capacity(frame.ops.len());
    let mut mem = init;
    let mut commit = pool.cst(1);
    let mut store_cells = Vec::new();

    let read = |pool: &mut Pool, vals: &[TermId], v: FrameValue, at: usize| -> Result<TermId, EncodeStop> {
        match v {
            FrameValue::Op(j) => vals.get(j).copied().ok_or(EncodeStop::Malformed {
                op: at,
                what: "operand references an op outside the evaluated prefix",
            }),
            FrameValue::LiveIn(j) => {
                if j < n_live {
                    Ok(pool.var(j as u32))
                } else {
                    Err(EncodeStop::Malformed {
                        op: at,
                        what: "operand references an out-of-range live-in",
                    })
                }
            }
            FrameValue::Const(c) => const_bits(c)
                .map(|b| pool.cst(b))
                .ok_or_else(|| unsup("float constant")),
        }
    };
    let arg = |op: &crate::frame::FrameOp, n: usize, at: usize| -> Result<FrameValue, EncodeStop> {
        op.args.get(n).copied().ok_or(EncodeStop::Malformed {
            op: at,
            what: "op is missing a required argument",
        })
    };

    for (i, op) in frame.ops.iter().enumerate() {
        if op.ty == Type::F64 {
            return Err(unsup(format!("float-typed op {i}")));
        }
        let pred = match op.pred {
            Some(p) => {
                let t = read(pool, &vals, p, i)?;
                pool.boolify(t)
            }
            None => pool.cst(1),
        };
        let slot = match op.kind {
            FrameOpKind::Compute(o) => {
                let mut args = Vec::with_capacity(op.args.len());
                for a in &op.args {
                    args.push(read(pool, &vals, *a, i)?);
                }
                let need = match o {
                    Op::Select => 3,
                    Op::FSqrt | Op::IToF | Op::FToI => 1,
                    _ => 2,
                };
                if args.len() < need {
                    return Err(EncodeStop::Malformed {
                        op: i,
                        what: "op is missing a required argument",
                    });
                }
                match pure_term(pool, o, &args, op.imm) {
                    Some(Ok(t)) => t,
                    Some(Err(stop)) => return Err(stop),
                    None => {
                        if matches!(o, Op::Load | Op::Store | Op::Call(_) | Op::Phi) {
                            return Err(EncodeStop::Malformed {
                                op: i,
                                what: "compute op is not pure",
                            });
                        }
                        return Err(unsup(format!("float op at {i}")));
                    }
                }
            }
            FrameOpKind::Load => {
                let addr = read(pool, &vals, arg(op, 0, i)?, i)?;
                let cell = cell_of(pool, addr);
                pool.sel(mem, cell)
            }
            FrameOpKind::Store => {
                let v = read(pool, &vals, arg(op, 0, i)?, i)?;
                let addr = read(pool, &vals, arg(op, 1, i)?, i)?;
                let cell = cell_of(pool, addr);
                let stored = pool.mem_store(mem, cell, v);
                mem = pool.mem_ite(pred, stored, mem);
                store_cells.push(cell);
                pool.cst(0)
            }
            FrameOpKind::Guard { expected } => {
                let actual = read(pool, &vals, arg(op, 0, i)?, i)?;
                let want = pool.cst(expected as u64);
                let b = pool.boolify(actual);
                let hit = pool.cmp(needle_ir::CmpOp::Eq, b, want);
                let pass = {
                    let np = pool.not(pred);
                    pool.or2(np, hit)
                };
                commit = pool.and2(commit, pass);
                pass
            }
        };
        vals.push(slot);
    }

    let mut live_outs = Vec::with_capacity(frame.live_outs.len());
    for (k, lo) in frame.live_outs.iter().enumerate() {
        // Mirror exec: live-outs read from the full value array.
        live_outs.push(read(pool, &vals, lo.value, frame.ops.len() + k)?);
    }
    Ok(FrameEnc {
        commit,
        live_outs,
        mem,
        store_cells,
    })
}

/// Budget knobs for region path enumeration.
pub struct RegionBudget {
    /// Maximum control-flow paths explored.
    pub max_paths: usize,
    /// Maximum instructions walked across all paths.
    pub max_steps: usize,
}

/// Enumerate every control-flow path of `frame.region` symbolically,
/// mirroring the reference walker's semantics.
pub fn encode_region(
    pool: &mut Pool,
    func: &Function,
    frame: &Frame,
    budget: &RegionBudget,
) -> Result<RegionEnc, EncodeStop> {
    let region = &frame.region;
    if region.blocks.is_empty() {
        return Err(unsup("empty region"));
    }
    for &b in &region.blocks {
        if b.0 as usize >= func.blocks.len() {
            return Err(unsup(format!("region references missing block {}", b.0)));
        }
    }

    // Live-in bindings, mirroring run_reference.
    let mut bound_args: HashMap<u32, TermId> = HashMap::new();
    let mut bound_insts: HashMap<InstId, TermId> = HashMap::new();
    for (i, li) in frame.live_ins.iter().enumerate() {
        let var = pool.var(i as u32);
        match li.value {
            Value::Arg(n) => {
                bound_args.insert(n, var);
            }
            Value::Inst(id) => {
                bound_insts.insert(id, var);
            }
            Value::Const(_) => {}
        }
    }

    struct Walker<'a> {
        pool: &'a mut Pool,
        func: &'a Function,
        frame: &'a Frame,
        bound_args: HashMap<u32, TermId>,
        bound_insts: HashMap<InstId, TermId>,
        steps: usize,
        paths: usize,
        budget: &'a RegionBudget,
        committing: Vec<PathEnc>,
    }

    struct PathState {
        regs: HashMap<InstId, TermId>,
        mem: MemId,
        cond: TermId,
        store_cells: Vec<TermId>,
    }

    impl Walker<'_> {
        fn read(&mut self, regs: &HashMap<InstId, TermId>, v: Value) -> Result<TermId, EncodeStop> {
            match v {
                Value::Const(c) => const_bits(c)
                    .map(|b| self.pool.cst(b))
                    .ok_or_else(|| unsup("float constant")),
                Value::Inst(id) => regs
                    .get(&id)
                    .or_else(|| self.bound_insts.get(&id))
                    .copied()
                    .ok_or_else(|| unsup(format!("unbound value %{}", id.0))),
                Value::Arg(n) => self
                    .bound_args
                    .get(&n)
                    .copied()
                    .ok_or_else(|| unsup(format!("unbound argument {n}"))),
            }
        }

        fn walk(
            &mut self,
            cur: needle_ir::BlockId,
            pred: Option<needle_ir::BlockId>,
            mut st: PathState,
        ) -> Result<(), EncodeStop> {
            let region = &self.frame.region;
            let block = self.func.block(cur);

            // Each block visit costs a step so even empty-block cycles
            // hit the budget instead of recursing forever.
            self.steps += 1;
            if self.steps > self.budget.max_steps {
                return Err(EncodeStop::Budget(format!(
                    "region walk exceeded {} steps",
                    self.budget.max_steps
                )));
            }

            // φs evaluate simultaneously on block entry; entry-block φs
            // are live-ins and are skipped.
            let mut phi_vals: Vec<(InstId, TermId)> = Vec::new();
            for &iid in &block.insts {
                let inst = self.func.inst(iid);
                if !inst.is_phi() {
                    break;
                }
                if cur == region.entry() {
                    continue;
                }
                let p = pred.ok_or_else(|| unsup("φ without incoming edge"))?;
                let v = inst
                    .phi_incoming(p)
                    .ok_or_else(|| unsup("φ missing incoming value"))?;
                phi_vals.push((iid, self.read(&st.regs, v)?));
            }
            for (iid, v) in phi_vals {
                st.regs.insert(iid, v);
            }

            for &iid in &block.insts {
                let inst = self.func.inst(iid);
                if inst.is_phi() {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.budget.max_steps {
                    return Err(EncodeStop::Budget(format!(
                        "region walk exceeded {} steps",
                        self.budget.max_steps
                    )));
                }
                if inst.ty == Type::F64 {
                    return Err(unsup(format!("float-typed inst %{}", iid.0)));
                }
                let t = match inst.op {
                    Op::Load => {
                        let addr = self.read(&st.regs, inst.args[0])?;
                        let cell = cell_of(self.pool, addr);
                        self.pool.sel(st.mem, cell)
                    }
                    Op::Store => {
                        let v = self.read(&st.regs, inst.args[0])?;
                        let addr = self.read(&st.regs, inst.args[1])?;
                        let cell = cell_of(self.pool, addr);
                        st.mem = self.pool.mem_store(st.mem, cell, v);
                        st.store_cells.push(cell);
                        self.pool.cst(0)
                    }
                    Op::Call(_) => return Err(unsup(format!("call at %{}", iid.0))),
                    Op::Phi => unreachable!("phis handled on block entry"),
                    pure => {
                        let mut args = Vec::with_capacity(inst.args.len());
                        for a in &inst.args {
                            args.push(self.read(&st.regs, *a)?);
                        }
                        match pure_term(self.pool, pure, &args, inst.imm) {
                            Some(Ok(t)) => t,
                            Some(Err(stop)) => return Err(stop),
                            None => return Err(unsup(format!("float op at %{}", iid.0))),
                        }
                    }
                };
                st.regs.insert(iid, t);
            }

            if cur == region.exit() {
                let live_outs = self
                    .frame
                    .live_outs
                    .iter()
                    .map(|lo| st.regs.get(&lo.inst).copied())
                    .collect();
                self.committing.push(PathEnc {
                    cond: st.cond,
                    live_outs,
                    mem: st.mem,
                    store_cells: st.store_cells,
                });
                return Ok(());
            }

            match block.term.clone() {
                Terminator::Br(next) => {
                    if region.edges.contains(&(cur, next)) {
                        self.descend(cur, next, st)
                    } else {
                        Ok(()) // aborting leaf
                    }
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.read(&st.regs, cond)?;
                    let cb = self.pool.boolify(c);
                    let nc = self.pool.not(cb);
                    for (branch_cond, next) in [(cb, then_bb), (nc, else_bb)] {
                        // A constant-false arm is unreachable: skip it.
                        if let Node::Const(0) = self.pool.node(branch_cond) {
                            continue;
                        }
                        if !region.edges.contains(&(cur, next)) {
                            continue; // aborting leaf
                        }
                        let sub = PathState {
                            regs: st.regs.clone(),
                            mem: st.mem,
                            cond: self.pool.and2(st.cond, branch_cond),
                            store_cells: st.store_cells.clone(),
                        };
                        self.descend(cur, next, sub)?;
                    }
                    Ok(())
                }
                Terminator::Ret(_) | Terminator::Unreachable => Ok(()), // aborting leaf
            }
        }

        fn descend(
            &mut self,
            cur: needle_ir::BlockId,
            next: needle_ir::BlockId,
            st: PathState,
        ) -> Result<(), EncodeStop> {
            self.paths += 1;
            if self.paths > self.budget.max_paths {
                return Err(EncodeStop::Budget(format!(
                    "region has more than {} paths",
                    self.budget.max_paths
                )));
            }
            if next.0 as usize >= self.func.blocks.len() {
                return Err(unsup(format!("edge to missing block {}", next.0)));
            }
            self.walk(next, Some(cur), st)
        }
    }

    let init = pool.mem_init();
    let start_cond = pool.cst(1);
    let mut w = Walker {
        pool,
        func,
        frame,
        bound_args,
        bound_insts,
        steps: 0,
        paths: 1,
        budget,
        committing: Vec::new(),
    };
    w.walk(
        region.entry(),
        None,
        PathState {
            regs: HashMap::new(),
            mem: init,
            cond: start_cond,
            store_cells: Vec::new(),
        },
    )?;

    let paths = w.committing;
    let mut commit = pool.cst(0);
    for p in &paths {
        commit = pool.or2(commit, p.cond);
    }
    Ok(RegionEnc { commit, paths })
}
