//! Symbolic frame certification.
//!
//! Proves (or refutes) that a frame is equivalent to its source region
//! — or that one frame is equivalent to another across a transformation
//! — over **all** live-in values and initial memories, not just the
//! concrete inputs a differential probe happened to draw:
//!
//! 1. [`encode`] translates both sides into a shared 64-bit bit-vector
//!    term graph (loads/stores via a cell-indexed select/store memory
//!    theory, guards and branches as path conditions) whose folding
//!    rules mirror the concrete interpreters bit-for-bit;
//! 2. [`term`] hash-conses and algebraically normalizes the graph, so
//!    syntactic equality discharges most obligations outright;
//! 3. residual obligations are [`lower`](term::lower)ed (memory
//!    Ackermannized away) and [`blast`]ed to CNF for the in-house CDCL
//!    core in [`sat`], under configurable clause/conflict budgets.
//!
//! The verdict is deliberately four-valued: `Proved` and `Refuted` are
//! *decisions* (a refutation always carries a counterexample that has
//! already replayed as a concrete divergence through the differential
//! verifier — a model that fails to replay is reported as
//! `Unsupported`, never as a false refutation); `Timeout` and
//! `Unsupported` are honest fallbacks that tell the caller to keep
//! using the differential probe and why.

pub mod blast;
pub mod cache;
pub mod encode;
pub mod sat;
pub mod term;

use needle_ir::interp::{Memory, Val};
use needle_ir::{Function, Type};

use crate::exec::run_frame;
use crate::frame::Frame;
use crate::verify::verify_invocation;
pub use cache::{fnv1a64, frame_fingerprint};
use encode::{encode_frame, encode_region, EncodeStop, FrameEnc, RegionBudget};
use term::{lower, Pool, TermId};

/// Budgets for one certification attempt.
#[derive(Debug, Clone)]
pub struct CertConfig {
    /// Maximum control-flow paths explored through the region.
    pub max_paths: usize,
    /// Maximum region instructions walked across all paths.
    pub max_steps: usize,
    /// Maximum distinct terms before the attempt times out.
    pub max_terms: usize,
    /// Maximum CNF clauses the bit-blaster may emit.
    pub max_clauses: usize,
    /// Maximum SAT conflicts before the attempt times out.
    pub max_conflicts: u64,
}

impl Default for CertConfig {
    fn default() -> CertConfig {
        CertConfig {
            max_paths: 512,
            max_steps: 4096,
            max_terms: 200_000,
            max_clauses: 400_000,
            max_conflicts: 50_000,
        }
    }
}

impl CertConfig {
    /// A small budget for per-case fuzzing cross-checks.
    pub fn quick() -> CertConfig {
        CertConfig {
            max_paths: 64,
            max_steps: 1024,
            max_terms: 50_000,
            max_clauses: 120_000,
            max_conflicts: 8_000,
        }
    }
}

/// A concrete input that makes the two sides disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// Live-in values, in frame signature order.
    pub live_ins: Vec<Val>,
    /// Initial memory image: `(byte address, 64-bit cell value)` pairs;
    /// every unlisted cell is zero.
    pub mem_seed: Vec<(u64, u64)>,
}

/// The checker's judgement.
#[derive(Debug, Clone, PartialEq)]
pub enum CertVerdict {
    /// Equivalent for every live-in vector and initial memory.
    Proved,
    /// Not equivalent; the counterexample replays as a real divergence.
    Refuted(CounterExample),
    /// A budget ran out before a decision.
    Timeout {
        /// Which budget, and where.
        why: String,
    },
    /// The fragment is outside the checker's theory (floats, symbolic
    /// division, loop-carried frames, …).
    Unsupported {
        /// What was out of scope.
        why: String,
    },
}

impl CertVerdict {
    /// Short lowercase tag for logs and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            CertVerdict::Proved => "proved",
            CertVerdict::Refuted(_) => "refuted",
            CertVerdict::Timeout { .. } => "timeout",
            CertVerdict::Unsupported { .. } => "unsupported",
        }
    }
}

/// Solver effort behind a verdict.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Equivalence obligations generated.
    pub obligations: usize,
    /// Obligations discharged by normalization alone.
    pub discharged_syntactically: usize,
    /// Distinct terms in the shared graph.
    pub terms: usize,
    /// CNF variables (0 when no SAT call was needed).
    pub sat_vars: usize,
    /// CNF clauses.
    pub sat_clauses: usize,
    /// SAT conflicts spent.
    pub conflicts: u64,
}

/// A verdict plus the effort that produced it.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The judgement.
    pub verdict: CertVerdict,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Structural errors: the frame under certification is malformed.
/// These are typed errors, distinct from `Unsupported` verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymEqError {
    /// An op references an undefined slot, a forward/cyclic value, or
    /// is missing a required argument.
    Malformed {
        /// Index of the offending op.
        op: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for SymEqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymEqError::Malformed { op, what } => {
                write!(f, "malformed frame at op {op}: {what}")
            }
        }
    }
}

impl std::error::Error for SymEqError {}

enum Outcome {
    Verdict(CertVerdict),
    Sat(Vec<u64>, Vec<(u64, u64)>),
}

/// Shared tail: lower, blast, and solve the collected `bad` terms.
/// Returns either a final verdict (proved/timeout/unsupported) or a
/// satisfying assignment (candidate counterexample) to be replayed.
fn discharge(
    pool: &mut Pool,
    bads: Vec<TermId>,
    live_in_count: usize,
    cfg: &CertConfig,
    stats: &mut SolveStats,
) -> Outcome {
    stats.obligations = bads.len();
    let residual: Vec<TermId> = bads
        .into_iter()
        .filter(|&b| !matches!(pool.node(b), term::Node::Const(0)))
        .collect();
    stats.discharged_syntactically = stats.obligations - residual.len();
    if residual.is_empty() {
        stats.terms = pool.len();
        return Outcome::Verdict(CertVerdict::Proved);
    }
    let mut any_bad = pool.cst(0);
    for b in residual {
        any_bad = pool.or2(any_bad, b);
    }
    let lowered = lower(pool, &[any_bad]);
    stats.terms = pool.len();
    if pool.len() > cfg.max_terms {
        return Outcome::Verdict(CertVerdict::Timeout {
            why: format!("term budget exceeded ({} terms)", pool.len()),
        });
    }

    let mut blaster = blast::Blaster::new(pool, cfg.max_clauses);
    let mut assert_all = || -> Result<(), blast::BlastError> {
        blaster.assert_truth(lowered.roots[0])?;
        for &ax in &lowered.axioms {
            blaster.assert_truth(ax)?;
        }
        Ok(())
    };
    if let Err(e) = assert_all() {
        return Outcome::Verdict(match e {
            blast::BlastError::ClauseBudget => CertVerdict::Timeout {
                why: "clause budget exceeded".into(),
            },
            blast::BlastError::Unsupported(what) => CertVerdict::Unsupported { why: what.into() },
        });
    }
    let (n_vars, clauses, var_bits) = blaster.finish();
    stats.sat_vars = n_vars;
    stats.sat_clauses = clauses.len();

    let mut solver = sat::Solver::new(n_vars);
    for c in &clauses {
        if !solver.add_clause(c) {
            // Root-level unsat: no assignment violates the obligations.
            return Outcome::Verdict(CertVerdict::Proved);
        }
    }
    let result = solver.solve(cfg.max_conflicts);
    stats.conflicts = solver.stats.conflicts;
    match result {
        sat::SatResult::Unsat => Outcome::Verdict(CertVerdict::Proved),
        sat::SatResult::Unknown => Outcome::Verdict(CertVerdict::Timeout {
            why: format!("conflict budget exceeded ({} conflicts)", cfg.max_conflicts),
        }),
        sat::SatResult::Sat(model) => {
            // Decode every pool variable (live-ins first, then the
            // Ackermannized initial-memory reads).
            let all_vars: Vec<u64> = (0..pool.var_count())
                .map(|i| blast::decode_var(&var_bits, &model, i))
                .collect();
            let live_ins = all_vars.iter().take(live_in_count).copied().collect();
            let empty = std::collections::HashMap::new();
            let mut seeds = Vec::new();
            for &(addr_term, read_var) in &lowered.reads {
                let cell = pool.eval(addr_term, &all_vars, &empty);
                let val = pool.eval(read_var, &all_vars, &empty);
                seeds.push((cell.wrapping_mul(8), val));
            }
            Outcome::Sat(live_ins, seeds)
        }
    }
}

fn seed_memory(seeds: &[(u64, u64)]) -> Memory {
    let mut mem = Memory::new();
    for &(addr, bits) in seeds {
        mem.store(addr, Val::from_bits(bits, Type::I64));
    }
    mem
}

fn live_in_vals(frame: &Frame, raw: &[u64]) -> Vec<Val> {
    frame
        .live_ins
        .iter()
        .zip(raw)
        .map(|(li, &bits)| Val::from_bits(bits, li.ty))
        .collect()
}

fn stop_to_result(stop: EncodeStop, stats: SolveStats) -> Result<Certificate, SymEqError> {
    match stop {
        EncodeStop::Malformed { op, what } => Err(SymEqError::Malformed { op, what }),
        EncodeStop::Unsupported(why) => Ok(Certificate {
            verdict: CertVerdict::Unsupported { why },
            stats,
        }),
        EncodeStop::Budget(why) => Ok(Certificate {
            verdict: CertVerdict::Timeout { why },
            stats,
        }),
    }
}

/// Collect the cross-side obligations ("bad" terms, each satisfiable
/// only by a diverging input) for a frame encoding against a set of
/// committing paths.
fn frame_vs_region_bads(
    pool: &mut Pool,
    f: &FrameEnc,
    r: &encode::RegionEnc,
) -> Vec<TermId> {
    let mut bads = Vec::new();
    bads.push(pool.cmp(needle_ir::CmpOp::Ne, f.commit, r.commit));
    for p in &r.paths {
        for (j, plo) in p.live_outs.iter().enumerate() {
            // The differential verifier only compares live-outs the
            // reference walk defined; mirror that exactly.
            if let Some(t) = plo {
                let ne = pool.cmp(needle_ir::CmpOp::Ne, f.live_outs[j], *t);
                bads.push(pool.and2(p.cond, ne));
            }
        }
        let mut cells: Vec<TermId> = Vec::new();
        for &c in f.store_cells.iter().chain(&p.store_cells) {
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        for c in cells {
            let fv = pool.sel(f.mem, c);
            let rv = pool.sel(p.mem, c);
            let ne = pool.cmp(needle_ir::CmpOp::Ne, fv, rv);
            bads.push(pool.and2(p.cond, ne));
        }
    }
    bads
}

/// Certify `frame` against its source region in `func` over all
/// live-in values and initial memories.
///
/// # Errors
/// [`SymEqError::Malformed`] if the frame is structurally broken
/// (undefined slots, forward/cyclic references, missing arguments) —
/// never a panic.
pub fn certify_frame(
    func: &Function,
    frame: &Frame,
    cfg: &CertConfig,
) -> Result<Certificate, SymEqError> {
    let mut stats = SolveStats::default();
    let mut pool = Pool::new();
    let fenc = match encode_frame(&mut pool, frame) {
        Ok(e) => e,
        Err(stop) => return stop_to_result(stop, stats),
    };
    let budget = RegionBudget {
        max_paths: cfg.max_paths,
        max_steps: cfg.max_steps,
    };
    let renc = match encode_region(&mut pool, func, frame, &budget) {
        Ok(e) => e,
        Err(stop) => return stop_to_result(stop, stats),
    };
    if pool.len() > cfg.max_terms {
        return Ok(Certificate {
            verdict: CertVerdict::Timeout {
                why: format!("term budget exceeded ({} terms)", pool.len()),
            },
            stats,
        });
    }

    let bads = frame_vs_region_bads(&mut pool, &fenc, &renc);
    let n_live = frame.live_ins.len();
    match discharge(&mut pool, bads, n_live, cfg, &mut stats) {
        Outcome::Verdict(v) => Ok(Certificate { verdict: v, stats }),
        Outcome::Sat(raw_live_ins, seeds) => {
            // Soundness gate: the model must replay as a concrete
            // divergence through the differential verifier.
            let live_ins = live_in_vals(frame, &raw_live_ins);
            let mut mem = seed_memory(&seeds);
            let snapshot = mem.snapshot();
            let diverged = match run_frame(frame, &live_ins, &mut mem) {
                Err(e) => {
                    return Err(SymEqError::Malformed {
                        op: match e {
                            crate::exec::ExecFrameError::MalformedFrame { op, .. } => op,
                            crate::exec::ExecFrameError::LiveInArity { .. } => 0,
                        },
                        what: "frame execution failed on the counterexample",
                    })
                }
                Ok(outcome) => {
                    match verify_invocation(func, frame, &live_ins, &snapshot, &mem, &outcome) {
                        Ok(verdict) => !verdict.is_clean(),
                        Err(_) => false, // reference could not run: can't confirm
                    }
                }
            };
            let verdict = if diverged {
                CertVerdict::Refuted(CounterExample {
                    live_ins,
                    mem_seed: seeds,
                })
            } else {
                CertVerdict::Unsupported {
                    why: "candidate counterexample did not replay as a divergence".into(),
                }
            };
            Ok(Certificate { verdict, stats })
        }
    }
}

/// Certify that `after` is equivalent to `before` (same live-in
/// signature, same commit/abort behaviour, same memory effects and
/// live-outs on commit) — the per-transformation proof obligation the
/// optimizer passes emit.
///
/// # Errors
/// [`SymEqError::Malformed`] if either frame is structurally broken.
pub fn certify_frame_pair(
    before: &Frame,
    after: &Frame,
    cfg: &CertConfig,
) -> Result<Certificate, SymEqError> {
    let mut stats = SolveStats::default();
    if before.live_ins.len() != after.live_ins.len()
        || before
            .live_ins
            .iter()
            .zip(&after.live_ins)
            .any(|(a, b)| a.ty != b.ty)
    {
        return Ok(Certificate {
            verdict: CertVerdict::Unsupported {
                why: "transformation changed the live-in signature".into(),
            },
            stats,
        });
    }
    if before.live_outs.len() != after.live_outs.len() {
        return Ok(Certificate {
            verdict: CertVerdict::Unsupported {
                why: "transformation changed the live-out signature".into(),
            },
            stats,
        });
    }
    let mut pool = Pool::new();
    let b = match encode_frame(&mut pool, before) {
        Ok(e) => e,
        Err(stop) => return stop_to_result(stop, stats),
    };
    let a = match encode_frame(&mut pool, after) {
        Ok(e) => e,
        Err(stop) => return stop_to_result(stop, stats),
    };

    let mut bads = Vec::new();
    bads.push(pool.cmp(needle_ir::CmpOp::Ne, b.commit, a.commit));
    for (lb, la) in b.live_outs.iter().zip(&a.live_outs) {
        let ne = pool.cmp(needle_ir::CmpOp::Ne, *lb, *la);
        bads.push(pool.and2(b.commit, ne));
    }
    let mut cells: Vec<TermId> = Vec::new();
    for &c in b.store_cells.iter().chain(&a.store_cells) {
        if !cells.contains(&c) {
            cells.push(c);
        }
    }
    for c in cells {
        let bv = pool.sel(b.mem, c);
        let av = pool.sel(a.mem, c);
        let ne = pool.cmp(needle_ir::CmpOp::Ne, bv, av);
        bads.push(pool.and2(b.commit, ne));
    }

    let n_live = before.live_ins.len();
    match discharge(&mut pool, bads, n_live, cfg, &mut stats) {
        Outcome::Verdict(v) => Ok(Certificate { verdict: v, stats }),
        Outcome::Sat(raw_live_ins, seeds) => {
            let live_ins = live_in_vals(before, &raw_live_ins);
            let mut mem_b = seed_memory(&seeds);
            let mut mem_a = seed_memory(&seeds);
            let run = |frame: &Frame, mem: &mut Memory| {
                run_frame(frame, &live_ins, mem).map_err(|e| match e {
                    crate::exec::ExecFrameError::MalformedFrame { op, .. } => {
                        SymEqError::Malformed {
                            op,
                            what: "frame execution failed on the counterexample",
                        }
                    }
                    crate::exec::ExecFrameError::LiveInArity { .. } => SymEqError::Malformed {
                        op: 0,
                        what: "frame execution failed on the counterexample",
                    },
                })
            };
            let ob = run(before, &mut mem_b)?;
            let oa = run(after, &mut mem_a)?;
            let diverged = if ob.committed() != oa.committed() {
                true
            } else if let (
                crate::exec::FrameOutcome::Committed { live_outs: lb, .. },
                crate::exec::FrameOutcome::Committed { live_outs: la, .. },
            ) = (&ob, &oa)
            {
                lb.iter().zip(la).any(|(x, y)| x.to_bits() != y.to_bits())
                    || !mem_a.diff(&mem_b.snapshot()).is_empty()
            } else {
                false // both aborted and rolled back: equivalent here
            };
            let verdict = if diverged {
                CertVerdict::Refuted(CounterExample {
                    live_ins,
                    mem_seed: seeds,
                })
            } else {
                CertVerdict::Unsupported {
                    why: "candidate counterexample did not replay as a divergence".into(),
                }
            };
            Ok(Certificate { verdict, stats })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_frame;
    use needle_ir::parse::parse_function;
    use needle_regions::OffloadRegion;

    fn straightline() -> (Function, Frame) {
        let func = parse_function(
            "fn @k(i64 %arg0, i64 %arg1, i64 %arg2) -> i64 {\n\
             bb0:\n\
             %0 = add i64 %arg0, %arg1\n\
             store %0, %arg2\n\
             br bb1\n\
             bb1:\n\
             %2 = mul i64 %0, %arg0\n\
             ret %2\n\
             }",
        )
        .expect("parse");
        let region = OffloadRegion::from_path(
            &[needle_ir::BlockId(0), needle_ir::BlockId(1)],
            1,
            1.0,
        );
        let frame = build_frame(&func, &region).expect("build");
        (func, frame)
    }

    #[test]
    fn correct_frame_is_proved() {
        let (func, frame) = straightline();
        let cert = certify_frame(&func, &frame, &CertConfig::default()).expect("certify");
        assert_eq!(cert.verdict, CertVerdict::Proved, "stats: {:?}", cert.stats);
    }

    #[test]
    fn dropping_a_live_store_is_refuted_with_replayable_counterexample() {
        let (func, mut frame) = straightline();
        let store_at = frame
            .ops
            .iter()
            .position(|o| matches!(o.kind, crate::frame::FrameOpKind::Store))
            .expect("frame has a store");
        // Miscompile: DCE "decides" the store is dead and drops it. Ops
        // after the store only reference earlier slots, so removal is
        // representable by replacing it with a no-op compute.
        frame.ops[store_at].kind = crate::frame::FrameOpKind::Compute(needle_ir::Op::Add);
        frame.ops[store_at].args = vec![
            crate::frame::FrameValue::Const(needle_ir::Constant::Int(0)),
            crate::frame::FrameValue::Const(needle_ir::Constant::Int(0)),
        ];
        frame.undo_log_size = 0;
        let cert = certify_frame(&func, &frame, &CertConfig::default()).expect("certify");
        let CertVerdict::Refuted(cex) = &cert.verdict else {
            panic!("expected Refuted, got {:?}", cert.verdict);
        };
        // The counterexample must replay as a real divergence.
        let mut mem = seed_memory(&cex.mem_seed);
        let snapshot = mem.snapshot();
        let outcome = run_frame(&frame, &cex.live_ins, &mut mem).expect("run");
        let verdict =
            verify_invocation(&func, &frame, &cex.live_ins, &snapshot, &mem, &outcome)
                .expect("verify");
        assert!(!verdict.is_clean(), "counterexample must diverge");
    }

    #[test]
    fn frame_pair_identity_is_proved() {
        let (_, frame) = straightline();
        let cert = certify_frame_pair(&frame, &frame, &CertConfig::default()).expect("certify");
        assert_eq!(cert.verdict, CertVerdict::Proved);
    }

    #[test]
    fn malformed_forward_reference_is_a_typed_error() {
        let (_, mut frame) = straightline();
        // Op 0 referencing op 0 is a cyclic (self) def.
        frame.ops[0].args = vec![crate::frame::FrameValue::Op(0)];
        let err = certify_frame_pair(&frame, &frame, &CertConfig::default()).unwrap_err();
        assert!(matches!(err, SymEqError::Malformed { op: 0, .. }));
    }
}
