//! Hash-consed 64-bit bit-vector terms with a select/store memory theory.
//!
//! Every value the frame executor or the reference walker can produce is
//! a 64-bit pattern (`Val::to_bits`), so one sort suffices: a term
//! denotes a `u64`, interpreted as `i64` by the arithmetic operators —
//! the folding rules here mirror `needle_ir::interp::eval_pure`
//! bit-for-bit. Boolean contexts test "≠ 0" exactly like
//! `Val::as_bool`; comparison terms always produce 0/1.
//!
//! Memory is a second sort keyed by **cell index** (`addr >> 3` — the
//! paged [`needle_ir::Memory`] stores whole 8-byte words, so two byte
//! addresses alias iff they share a cell). [`Pool::lower`] eliminates
//! the memory sort before bit-blasting: selects are pushed through
//! store/ite chains down to the initial memory, whose reads are
//! Ackermannized into fresh variables plus congruence axioms.

use std::collections::HashMap;

use needle_ir::CmpOp;

/// Index of a hash-consed value term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Index of a hash-consed memory term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemId(pub u32);

/// Binary bit-vector operators. `LShr` is internal (cell addressing);
/// the others mirror the integer subset of [`needle_ir::Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bin {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Signed divide; divisor 0 yields 0.
    Div,
    /// Signed remainder; divisor 0 yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `rhs & 63`.
    Shl,
    /// Arithmetic shift right by `rhs & 63`.
    Shr,
    /// Logical shift right by `rhs & 63` (internal: cell = addr >> 3).
    LShr,
}

/// A value term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Literal 64-bit pattern.
    Const(u64),
    /// Free variable (live-in slot, or an Ackermannized initial read).
    Var(u32),
    /// Binary operator.
    Bin(Bin, TermId, TermId),
    /// Signed comparison producing 0/1.
    Cmp(CmpOp, TermId, TermId),
    /// `if cond ≠ 0 then t else e`.
    Ite(TermId, TermId, TermId),
    /// Read of memory cell `addr` (cell index, not byte address).
    Sel(MemId, TermId),
}

/// A memory term (cell-indexed array of 64-bit words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemNode {
    /// The initial (pre-invocation) memory, fully symbolic.
    Init,
    /// `base` with cell `addr` overwritten by `val`.
    Store(MemId, TermId, TermId),
    /// `if cond ≠ 0 then m1 else m2`.
    Ite(TermId, MemId, MemId),
}

/// Fold a binary operator over concrete bits, mirroring `eval_pure`.
pub fn fold_bin(op: Bin, a: u64, b: u64) -> u64 {
    let (x, y) = (a as i64, b as i64);
    let v = match op {
        Bin::Add => x.wrapping_add(y),
        Bin::Sub => x.wrapping_sub(y),
        Bin::Mul => x.wrapping_mul(y),
        Bin::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        Bin::Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        Bin::And => x & y,
        Bin::Or => x | y,
        Bin::Xor => x ^ y,
        Bin::Shl => x.wrapping_shl(y as u32 & 63),
        Bin::Shr => x.wrapping_shr(y as u32 & 63),
        Bin::LShr => return a >> (y as u32 & 63),
    };
    v as u64
}

/// Fold a comparison over concrete bits, mirroring `eval_pure`.
pub fn fold_cmp(op: CmpOp, a: u64, b: u64) -> u64 {
    op.eval((a as i64).cmp(&(b as i64))) as u64
}

fn negate_rel(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// The hash-consing arena for value and memory terms.
///
/// Smart constructors fold constants and apply light algebraic
/// rewrites, so syntactic equality of [`TermId`]s discharges many
/// obligations before any SAT work.
#[derive(Default)]
pub struct Pool {
    nodes: Vec<Node>,
    mems: Vec<MemNode>,
    intern: HashMap<Node, TermId>,
    intern_mem: HashMap<MemNode, MemId>,
    is_bool: Vec<bool>,
    n_vars: u32,
}

impl Pool {
    /// Fresh empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Number of distinct value terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of variables allocated so far.
    pub fn var_count(&self) -> u32 {
        self.n_vars
    }

    /// The node behind a term.
    pub fn node(&self, t: TermId) -> Node {
        self.nodes[t.0 as usize]
    }

    /// The node behind a memory term.
    pub fn mem_node(&self, m: MemId) -> MemNode {
        self.mems[m.0 as usize]
    }

    fn intern(&mut self, node: Node) -> TermId {
        if let Some(&t) = self.intern.get(&node) {
            return t;
        }
        let boolish = match node {
            Node::Const(v) => v <= 1,
            Node::Cmp(..) => true,
            Node::Bin(Bin::And | Bin::Or | Bin::Xor, a, b) => {
                self.is_bool[a.0 as usize] && self.is_bool[b.0 as usize]
            }
            Node::Ite(_, t, e) => self.is_bool[t.0 as usize] && self.is_bool[e.0 as usize],
            _ => false,
        };
        let t = TermId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.is_bool.push(boolish);
        self.intern.insert(node, t);
        t
    }

    fn intern_mem(&mut self, node: MemNode) -> MemId {
        if let Some(&m) = self.intern_mem.get(&node) {
            return m;
        }
        let m = MemId(self.mems.len() as u32);
        self.mems.push(node);
        self.intern_mem.insert(node, m);
        m
    }

    /// Constant term.
    pub fn cst(&mut self, v: u64) -> TermId {
        self.intern(Node::Const(v))
    }

    /// Variable `i`, registering it with the pool.
    pub fn var(&mut self, i: u32) -> TermId {
        self.n_vars = self.n_vars.max(i + 1);
        self.intern(Node::Var(i))
    }

    /// Allocate a variable index never used before.
    pub fn fresh_var(&mut self) -> TermId {
        let i = self.n_vars;
        self.var(i)
    }

    /// Whether `t` always evaluates to 0 or 1.
    pub fn term_is_bool(&self, t: TermId) -> bool {
        self.is_bool[t.0 as usize]
    }

    fn as_const(&self, t: TermId) -> Option<u64> {
        match self.node(t) {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Binary operator with constant folding and identities.
    pub fn bin(&mut self, op: Bin, a: TermId, b: TermId) -> TermId {
        let (ca, cb) = (self.as_const(a), self.as_const(b));
        if let (Some(x), Some(y)) = (ca, cb) {
            return self.cst(fold_bin(op, x, y));
        }
        match op {
            Bin::Add => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            Bin::Sub => {
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.cst(0);
                }
            }
            Bin::Mul => {
                if ca == Some(0) || cb == Some(0) {
                    return self.cst(0);
                }
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
            }
            Bin::Div => {
                if cb == Some(0) {
                    return self.cst(0);
                }
                if cb == Some(1) {
                    return a;
                }
            }
            Bin::Rem => {
                if cb == Some(0) || cb == Some(1) || a == b {
                    return self.cst(0);
                }
            }
            Bin::And => {
                if ca == Some(0) || cb == Some(0) {
                    return self.cst(0);
                }
                if ca == Some(u64::MAX) {
                    return b;
                }
                if cb == Some(u64::MAX) || a == b {
                    return a;
                }
            }
            Bin::Or => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) || a == b {
                    return a;
                }
                if ca == Some(u64::MAX) || cb == Some(u64::MAX) {
                    return self.cst(u64::MAX);
                }
            }
            Bin::Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.cst(0);
                }
            }
            Bin::Shl | Bin::Shr | Bin::LShr => {
                if let Some(y) = cb {
                    if y as u32 & 63 == 0 {
                        return a;
                    }
                }
                if ca == Some(0) {
                    return self.cst(0);
                }
            }
        }
        self.intern(Node::Bin(op, a, b))
    }

    /// Comparison with folding; `eq(cmp, 0)` flips the relation.
    pub fn cmp(&mut self, op: CmpOp, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.cst(fold_cmp(op, x, y));
        }
        if a == b {
            return self.cst(fold_cmp(op, 0, 0));
        }
        if self.as_const(b) == Some(0) {
            // ¬bool and double-negation normalization.
            if let Node::Cmp(r, x, y) = self.node(a) {
                match op {
                    CmpOp::Eq => return self.cmp(negate_rel(r), x, y),
                    CmpOp::Ne => return a,
                    _ => {}
                }
            }
            if op == CmpOp::Ne && self.term_is_bool(a) {
                return a;
            }
        }
        self.intern(Node::Cmp(op, a, b))
    }

    /// `if c ≠ 0 then t else e`.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if let Some(cv) = self.as_const(c) {
            return if cv != 0 { t } else { e };
        }
        if t == e {
            return t;
        }
        self.intern(Node::Ite(c, t, e))
    }

    /// Normalize a term to 0/1 truthiness (`≠ 0`).
    pub fn boolify(&mut self, t: TermId) -> TermId {
        if self.term_is_bool(t) {
            return t;
        }
        let z = self.cst(0);
        self.cmp(CmpOp::Ne, t, z)
    }

    /// Logical negation of a term's truthiness.
    pub fn not(&mut self, t: TermId) -> TermId {
        let z = self.cst(0);
        self.cmp(CmpOp::Eq, t, z)
    }

    /// Logical and of two truthiness values.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        let (ba, bb) = (self.boolify(a), self.boolify(b));
        self.bin(Bin::And, ba, bb)
    }

    /// Logical or of two truthiness values.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        let (ba, bb) = (self.boolify(a), self.boolify(b));
        self.bin(Bin::Or, ba, bb)
    }

    /// `a ⇒ b` over truthiness values.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// The initial symbolic memory.
    pub fn mem_init(&mut self) -> MemId {
        self.intern_mem(MemNode::Init)
    }

    /// Store `val` into cell `addr` of `base`.
    pub fn mem_store(&mut self, base: MemId, addr: TermId, val: TermId) -> MemId {
        // Store-over-store to the same cell keeps only the newer value.
        if let MemNode::Store(b2, a2, _) = self.mem_node(base) {
            if a2 == addr {
                return self.intern_mem(MemNode::Store(b2, addr, val));
            }
        }
        self.intern_mem(MemNode::Store(base, addr, val))
    }

    /// `if c ≠ 0 then m1 else m2`.
    pub fn mem_ite(&mut self, c: TermId, m1: MemId, m2: MemId) -> MemId {
        if let Some(cv) = self.as_const(c) {
            return if cv != 0 { m1 } else { m2 };
        }
        if m1 == m2 {
            return m1;
        }
        self.intern_mem(MemNode::Ite(c, m1, m2))
    }

    /// Read cell `addr` of `mem`, resolving through the store chain
    /// where addresses are syntactically equal or provably distinct.
    pub fn sel(&mut self, mem: MemId, addr: TermId) -> TermId {
        match self.mem_node(mem) {
            MemNode::Store(base, a2, v) => {
                if a2 == addr {
                    return v;
                }
                if let (Some(x), Some(y)) = (self.as_const(a2), self.as_const(addr)) {
                    if x != y {
                        return self.sel(base, addr);
                    }
                }
                self.intern(Node::Sel(mem, addr))
            }
            MemNode::Ite(c, m1, m2) => {
                let t = self.sel(m1, addr);
                let e = self.sel(m2, addr);
                self.ite(c, t, e)
            }
            MemNode::Init => self.intern(Node::Sel(mem, addr)),
        }
    }

    /// Evaluate `t` concretely: `vars[i]` binds `Var(i)` (missing vars
    /// read as 0), `init` is the initial memory image by cell index
    /// (missing cells read as 0, like a fresh [`needle_ir::Memory`]).
    pub fn eval(&self, t: TermId, vars: &[u64], init: &HashMap<u64, u64>) -> u64 {
        let mut memo: HashMap<TermId, u64> = HashMap::new();
        self.eval_memo(t, vars, init, &mut memo)
    }

    fn eval_memo(
        &self,
        t: TermId,
        vars: &[u64],
        init: &HashMap<u64, u64>,
        memo: &mut HashMap<TermId, u64>,
    ) -> u64 {
        if let Some(&v) = memo.get(&t) {
            return v;
        }
        let v = match self.node(t) {
            Node::Const(v) => v,
            Node::Var(i) => vars.get(i as usize).copied().unwrap_or(0),
            Node::Bin(op, a, b) => {
                let x = self.eval_memo(a, vars, init, memo);
                let y = self.eval_memo(b, vars, init, memo);
                fold_bin(op, x, y)
            }
            Node::Cmp(op, a, b) => {
                let x = self.eval_memo(a, vars, init, memo);
                let y = self.eval_memo(b, vars, init, memo);
                fold_cmp(op, x, y)
            }
            Node::Ite(c, th, el) => {
                if self.eval_memo(c, vars, init, memo) != 0 {
                    self.eval_memo(th, vars, init, memo)
                } else {
                    self.eval_memo(el, vars, init, memo)
                }
            }
            Node::Sel(m, a) => {
                let cell = self.eval_memo(a, vars, init, memo);
                self.eval_mem(m, cell, vars, init, memo)
            }
        };
        memo.insert(t, v);
        v
    }

    fn eval_mem(
        &self,
        m: MemId,
        cell: u64,
        vars: &[u64],
        init: &HashMap<u64, u64>,
        memo: &mut HashMap<TermId, u64>,
    ) -> u64 {
        match self.mem_node(m) {
            MemNode::Init => init.get(&cell).copied().unwrap_or(0),
            MemNode::Store(base, a, v) => {
                if self.eval_memo(a, vars, init, memo) == cell {
                    self.eval_memo(v, vars, init, memo)
                } else {
                    self.eval_mem(base, cell, vars, init, memo)
                }
            }
            MemNode::Ite(c, m1, m2) => {
                if self.eval_memo(c, vars, init, memo) != 0 {
                    self.eval_mem(m1, cell, vars, init, memo)
                } else {
                    self.eval_mem(m2, cell, vars, init, memo)
                }
            }
        }
    }
}

/// Result of [`lower`]: pure bit-vector roots plus the Ackermann
/// expansion of initial-memory reads.
pub struct Lowered {
    /// Rewritten roots, memory-free.
    pub roots: Vec<TermId>,
    /// `(cell-address term, fresh read variable)` pairs, one per
    /// distinct initial read.
    pub reads: Vec<(TermId, TermId)>,
    /// `(op, dividend, divisor, fresh result variable)` tuples, one per
    /// distinct residual Div/Rem application.
    pub divs: Vec<(Bin, TermId, TermId, TermId)>,
    /// Congruence axioms: `addrᵢ = addrⱼ ⇒ readᵢ = readⱼ` for reads,
    /// `aᵢ = aⱼ ∧ bᵢ = bⱼ ⇒ rᵢ = rⱼ` plus `b = 0 ⇒ r = 0` for
    /// divisions; all must be assumed true alongside the roots.
    pub axioms: Vec<TermId>,
}

/// Eliminate the memory sort from `roots`: push every select through
/// its store chain (branching on address equality) and replace reads of
/// the initial memory with fresh variables under congruence axioms.
/// Residual `Div`/`Rem` nodes (the blaster has no divider circuit) are
/// Ackermannized the same way: identical applications hash-cons to the
/// same fresh variable, congruence covers structurally different but
/// equal operands, and the `divisor = 0 ⇒ result = 0` axiom pins the
/// one boundary case the concrete semantics define specially. The
/// abstraction over-approximates, so UNSAT (a proof) stays sound; any
/// spurious model is screened by the caller's concrete-replay gate.
pub fn lower(pool: &mut Pool, roots: &[TermId]) -> Lowered {
    struct Lowerer {
        memo: HashMap<TermId, TermId>,
        sel_memo: HashMap<(MemId, TermId), TermId>,
        read_by_addr: HashMap<TermId, TermId>,
        reads: Vec<(TermId, TermId)>,
        div_by_app: HashMap<(Bin, TermId, TermId), TermId>,
        divs: Vec<(Bin, TermId, TermId, TermId)>,
    }
    impl Lowerer {
        fn term(&mut self, pool: &mut Pool, t: TermId) -> TermId {
            if let Some(&r) = self.memo.get(&t) {
                return r;
            }
            let r = match pool.node(t) {
                Node::Const(_) | Node::Var(_) => t,
                Node::Bin(op, a, b) => {
                    let (x, y) = (self.term(pool, a), self.term(pool, b));
                    let folded = pool.bin(op, x, y);
                    if matches!(op, Bin::Div | Bin::Rem)
                        && matches!(pool.node(folded), Node::Bin(Bin::Div | Bin::Rem, _, _))
                    {
                        *self.div_by_app.entry((op, x, y)).or_insert_with(|| {
                            let v = pool.fresh_var();
                            self.divs.push((op, x, y, v));
                            v
                        })
                    } else {
                        folded
                    }
                }
                Node::Cmp(op, a, b) => {
                    let (x, y) = (self.term(pool, a), self.term(pool, b));
                    pool.cmp(op, x, y)
                }
                Node::Ite(c, th, el) => {
                    let (c2, t2, e2) = (self.term(pool, c), self.term(pool, th), self.term(pool, el));
                    pool.ite(c2, t2, e2)
                }
                Node::Sel(m, a) => {
                    let a2 = self.term(pool, a);
                    self.sel(pool, m, a2)
                }
            };
            self.memo.insert(t, r);
            r
        }

        fn sel(&mut self, pool: &mut Pool, m: MemId, addr: TermId) -> TermId {
            if let Some(&r) = self.sel_memo.get(&(m, addr)) {
                return r;
            }
            let r = match pool.mem_node(m) {
                MemNode::Init => *self.read_by_addr.entry(addr).or_insert_with(|| {
                    let v = pool.fresh_var();
                    self.reads.push((addr, v));
                    v
                }),
                MemNode::Store(base, a2, v) => {
                    let a2l = self.term(pool, a2);
                    let vl = self.term(pool, v);
                    let hit = pool.cmp(CmpOp::Eq, addr, a2l);
                    let miss = self.sel(pool, base, addr);
                    pool.ite(hit, vl, miss)
                }
                MemNode::Ite(c, m1, m2) => {
                    let cl = self.term(pool, c);
                    let t = self.sel(pool, m1, addr);
                    let e = self.sel(pool, m2, addr);
                    pool.ite(cl, t, e)
                }
            };
            self.sel_memo.insert((m, addr), r);
            r
        }
    }

    let mut lw = Lowerer {
        memo: HashMap::new(),
        sel_memo: HashMap::new(),
        read_by_addr: HashMap::new(),
        reads: Vec::new(),
        div_by_app: HashMap::new(),
        divs: Vec::new(),
    };
    let roots: Vec<TermId> = roots.iter().map(|&t| lw.term(pool, t)).collect();
    let mut axioms = Vec::new();
    for i in 0..lw.reads.len() {
        for j in (i + 1)..lw.reads.len() {
            let (ai, ri) = lw.reads[i];
            let (aj, rj) = lw.reads[j];
            let same_addr = pool.cmp(CmpOp::Eq, ai, aj);
            let same_val = pool.cmp(CmpOp::Eq, ri, rj);
            axioms.push(pool.implies(same_addr, same_val));
        }
    }
    let zero = pool.cst(0);
    for i in 0..lw.divs.len() {
        let (_, _, bi, ri) = lw.divs[i];
        let div_by_zero = pool.cmp(CmpOp::Eq, bi, zero);
        let zero_result = pool.cmp(CmpOp::Eq, ri, zero);
        axioms.push(pool.implies(div_by_zero, zero_result));
        for j in (i + 1)..lw.divs.len() {
            let (opi, ai, bi, ri) = lw.divs[i];
            let (opj, aj, bj, rj) = lw.divs[j];
            if opi != opj {
                continue;
            }
            let same_a = pool.cmp(CmpOp::Eq, ai, aj);
            let same_b = pool.cmp(CmpOp::Eq, bi, bj);
            let same_app = pool.and2(same_a, same_b);
            let same_val = pool.cmp(CmpOp::Eq, ri, rj);
            axioms.push(pool.implies(same_app, same_val));
        }
    }
    Lowered {
        roots,
        reads: lw.reads,
        divs: lw.divs,
        axioms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_mirrors_eval_pure() {
        let cases: &[(Bin, u64, u64)] = &[
            (Bin::Add, u64::MAX, 1),
            (Bin::Sub, 0, 1),
            (Bin::Mul, 0x8000_0000_0000_0000, 3),
            (Bin::Div, 7, 0),
            (Bin::Div, i64::MIN as u64, u64::MAX), // MIN / -1 wraps
            (Bin::Rem, 7, 0),
            (Bin::Rem, i64::MIN as u64, u64::MAX),
            (Bin::Shl, 1, 64),  // amount masked to 0
            (Bin::Shr, u64::MAX, 1), // arithmetic: stays all-ones
        ];
        let expect: &[u64] = &[
            0,
            (-1i64) as u64,
            0x8000_0000_0000_0000u64.wrapping_mul(3),
            0,
            i64::MIN as u64, // wrapping_div(MIN, -1) == MIN
            0,
            0,
            1,
            u64::MAX,
        ];
        for ((op, a, b), want) in cases.iter().zip(expect) {
            assert_eq!(fold_bin(*op, *a, *b), *want, "{op:?}({a:#x},{b:#x})");
        }
    }

    #[test]
    fn hash_consing_dedups_and_rewrites() {
        let mut p = Pool::new();
        let x = p.var(0);
        let zero = p.cst(0);
        assert_eq!(p.bin(Bin::Add, x, zero), x);
        assert_eq!(p.bin(Bin::Xor, x, x), zero);
        let a = p.bin(Bin::Add, x, x);
        let b = p.bin(Bin::Add, x, x);
        assert_eq!(a, b);
        // ¬¬b normalizes back to b for comparison terms.
        let c = p.cmp(CmpOp::Lt, x, zero);
        let nc = p.not(c);
        assert_eq!(p.not(nc), c);
    }

    #[test]
    fn select_resolves_through_stores() {
        let mut p = Pool::new();
        let init = p.mem_init();
        let (a1, a2) = (p.cst(1), p.cst(2));
        let v = p.var(0);
        let m = p.mem_store(init, a1, v);
        assert_eq!(p.sel(m, a1), v);
        // Distinct constant cells see through the store.
        let under = p.sel(m, a2);
        assert_eq!(under, p.sel(init, a2));
    }

    #[test]
    fn lower_ackermannizes_init_reads() {
        let mut p = Pool::new();
        let init = p.mem_init();
        let (x, y) = (p.var(0), p.var(1));
        let r1 = p.sel(init, x);
        let r2 = p.sel(init, y);
        let diff = p.bin(Bin::Sub, r1, r2);
        let lowered = lower(&mut p, &[diff]);
        assert_eq!(lowered.reads.len(), 2);
        assert_eq!(lowered.axioms.len(), 1);
        // The lowered root is memory-free.
        fn mem_free(p: &Pool, t: TermId) -> bool {
            match p.node(t) {
                Node::Sel(..) => false,
                Node::Const(_) | Node::Var(_) => true,
                Node::Bin(_, a, b) | Node::Cmp(_, a, b) => mem_free(p, a) && mem_free(p, b),
                Node::Ite(c, a, b) => mem_free(p, c) && mem_free(p, a) && mem_free(p, b),
            }
        }
        assert!(mem_free(&p, lowered.roots[0]));
    }

    #[test]
    fn lower_ackermannizes_symbolic_division() {
        let mut p = Pool::new();
        let (x, y, z) = (p.var(0), p.var(1), p.var(2));
        let d1 = p.bin(Bin::Div, x, y);
        let d2 = p.bin(Bin::Div, x, z);
        let r1 = p.bin(Bin::Rem, x, y);
        let diff = p.bin(Bin::Sub, d1, d2);
        let sum = p.bin(Bin::Add, diff, r1);
        let lowered = lower(&mut p, &[sum]);
        // Three distinct applications, each with a div-by-zero axiom,
        // plus one same-op congruence pair (the two Divs).
        assert_eq!(lowered.divs.len(), 3);
        assert_eq!(lowered.axioms.len(), 4);
        // Identical applications share one fresh variable: the two Div
        // entries are distinct, but re-lowering d1 hits the memo.
        fn div_free(p: &Pool, t: TermId) -> bool {
            match p.node(t) {
                Node::Bin(Bin::Div | Bin::Rem, _, _) => false,
                Node::Const(_) | Node::Var(_) => true,
                Node::Bin(_, a, b) | Node::Cmp(_, a, b) => div_free(p, a) && div_free(p, b),
                Node::Ite(c, a, b) => div_free(p, c) && div_free(p, a) && div_free(p, b),
                Node::Sel(..) => true,
            }
        }
        assert!(div_free(&p, lowered.roots[0]));
        // Constant divisions still fold instead of abstracting.
        let c1 = p.cst(84);
        let c2 = p.cst(2);
        let folded = p.bin(Bin::Div, c1, c2);
        let l2 = lower(&mut p, &[folded]);
        assert_eq!(l2.divs.len(), 0);
        assert!(matches!(p.node(l2.roots[0]), Node::Const(42)));
    }

    #[test]
    fn eval_walks_store_chains() {
        let mut p = Pool::new();
        let init = p.mem_init();
        let a = p.var(0);
        let v = p.cst(7);
        let m = p.mem_store(init, a, v);
        let b = p.var(1);
        let read = p.sel(m, b);
        let mut image = HashMap::new();
        image.insert(5u64, 99u64);
        // b == a → sees the store; b elsewhere → sees the image.
        assert_eq!(p.eval(read, &[3, 3], &image), 7);
        assert_eq!(p.eval(read, &[3, 5], &image), 99);
        assert_eq!(p.eval(read, &[3, 6], &image), 0);
    }
}
