//! Frame fingerprinting for the verdict cache.
//!
//! A certificate is only reusable for a bit-identical frame *and*
//! source region, so the fingerprint hashes the frame's full canonical
//! `Debug` rendering (ops, predicates, immediates, live-ins/outs,
//! guards, and the embedded region with its ordered edge set) under
//! FNV-1a. The durable journal layer in the `needle` core crate keys
//! cached verdicts by this hash.

use crate::frame::Frame;

/// 64-bit FNV-1a (same parameters as the core journal's checksums).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a frame (including its source region).
///
/// Deterministic within a build: every field that affects execution
/// semantics participates, and the region's `BTreeSet` edge order makes
/// the rendering canonical.
pub fn frame_fingerprint(frame: &Frame) -> u64 {
    let canon = format!("{frame:?}");
    fnv1a64(canon.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameOp, FrameOpKind, FrameValue};

    #[test]
    fn fingerprint_tracks_semantic_fields() {
        let mut frame = Frame {
            ops: Vec::new(),
            live_ins: Vec::new(),
            live_outs: Vec::new(),
            guards: Vec::new(),
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: Vec::new(),
            region: needle_regions::OffloadRegion::from_path(&[], 0, 0.0),
        };
        let base = frame_fingerprint(&frame);
        assert_eq!(base, frame_fingerprint(&frame), "deterministic");
        frame.ops.push(FrameOp {
            kind: FrameOpKind::Guard { expected: true },
            args: vec![FrameValue::LiveIn(0)],
            ty: needle_ir::Type::I1,
            pred: None,
            src: None,
            imm: 0,
        });
        assert_ne!(base, frame_fingerprint(&frame), "ops change the hash");
    }
}
