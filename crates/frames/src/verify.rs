//! Differential rollback verification.
//!
//! The frame executor claims two invariants (§V):
//!
//! 1. **Abort atomicity** — an aborted invocation leaves externally
//!    visible memory bit-identical to its pre-invocation state;
//! 2. **Commit equivalence** — a committed invocation has exactly the
//!    memory effects and live-out values that architecturally executing
//!    the region on the host would have produced.
//!
//! This module checks both *differentially*: [`run_reference`] is an
//! independent interpreter that walks the region's IR (not the frame's
//! dataflow graph) with the same live-in bindings, and
//! [`verify_invocation`] bit-exactly diffs the frame's memory image
//! against a pre-invocation [`MemSnapshot`] (abort) or the reference
//! run's image and live-outs (commit). Because the two executors share
//! only [`eval_pure`], a bug in frame lowering, predication, undo
//! logging, or rollback shows up as a [`Divergence`].

use std::collections::HashMap;

use needle_ir::interp::{eval_pure, MemDelta, MemSnapshot, Memory, Val};
use needle_ir::{Function, InstId, Op, Terminator, Value};

use crate::exec::FrameOutcome;
use crate::frame::Frame;

/// Structural failures that prevent verification from running at all
/// (distinct from [`Divergence`], which is verification *succeeding* and
/// finding a bug).
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The live-in vector does not match the frame signature.
    LiveInArity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// The region references a value with no binding (neither live-in nor
    /// region-defined).
    UnboundValue(Value),
    /// The region contains a call, which the reference interpreter cannot
    /// execute in isolation.
    CallInRegion(InstId),
    /// A φ had no incoming entry for the dynamic predecessor.
    PhiMissingIncoming(InstId),
    /// The reference walk exceeded its step budget (cyclic region).
    StepLimit(u64),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LiveInArity { expected, got } => {
                write!(f, "expected {expected} live-ins, got {got}")
            }
            VerifyError::UnboundValue(v) => write!(f, "no binding for {v:?}"),
            VerifyError::CallInRegion(i) => write!(f, "call {i} inside region"),
            VerifyError::PhiMissingIncoming(i) => write!(f, "phi {i} missing incoming"),
            VerifyError::StepLimit(n) => write!(f, "reference walk exceeded {n} steps"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Result of architecturally executing the region on the reference
/// interpreter.
#[derive(Debug, Clone)]
pub struct RefRun {
    /// Whether control stayed inside the region all the way to the exit
    /// block (the architectural analogue of "every guard passes").
    pub committed: bool,
    /// Values of the frame's live-outs, where the reference walk defined
    /// them (`None` for live-outs in arms the walk did not take).
    pub live_outs: Vec<Option<Val>>,
    /// The memory image after the walk.
    pub mem: Memory,
}

/// One verified discrepancy between frame execution and the reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// An aborted invocation left a memory cell different from the
    /// pre-invocation snapshot (broken rollback).
    AbortLeak(MemDelta),
    /// A committed invocation's memory differs from the reference run's.
    CommitMemMismatch(MemDelta),
    /// A committed live-out differs from the reference value.
    LiveOutMismatch {
        /// Index into [`Frame::live_outs`].
        index: usize,
        /// What the frame produced.
        frame: Val,
        /// What the reference produced.
        reference: Val,
    },
    /// The frame and the reference disagree about whether the invocation
    /// stays on the region (commit vs guard failure).
    CommitDisagreement {
        /// Frame's view.
        frame_committed: bool,
        /// Reference's view.
        reference_committed: bool,
    },
}

/// The verifier's judgement on one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Every discrepancy found (empty = invocation verified clean).
    pub divergences: Vec<Divergence>,
}

impl Verdict {
    /// No divergence found.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Step budget for one reference walk. Offload regions are acyclic, so
/// any walk longer than this indicates a malformed region.
const REF_STEP_LIMIT: u64 = 1_000_000;

/// Architecturally execute `frame.region` of `func` against `mem` with
/// the frame's live-in bindings, following real control flow. Returns
/// whether control reached the region exit, the live-out values the walk
/// defined, and the resulting memory.
///
/// # Errors
/// See [`VerifyError`]; all variants indicate structural problems, not
/// verification failures.
pub fn run_reference(
    func: &Function,
    frame: &Frame,
    live_ins: &[Val],
    mem: &mut Memory,
) -> Result<RefRun, VerifyError> {
    if live_ins.len() != frame.live_ins.len() {
        return Err(VerifyError::LiveInArity {
            expected: frame.live_ins.len(),
            got: live_ins.len(),
        });
    }
    let region = &frame.region;

    // Bindings: live-ins cover every externally defined value the region
    // reads (including entry-block φs); region-defined insts fill `regs`
    // as the walk executes them.
    let mut bound_args: HashMap<u32, Val> = HashMap::new();
    let mut bound_insts: HashMap<InstId, Val> = HashMap::new();
    for (li, v) in frame.live_ins.iter().zip(live_ins) {
        match li.value {
            Value::Arg(n) => {
                bound_args.insert(n, *v);
            }
            Value::Inst(id) => {
                bound_insts.insert(id, *v);
            }
            Value::Const(_) => {}
        }
    }
    let mut regs: HashMap<InstId, Val> = HashMap::new();

    let read = |regs: &HashMap<InstId, Val>, v: Value| -> Result<Val, VerifyError> {
        match v {
            Value::Const(c) => Ok(Val::from(c)),
            Value::Inst(id) => regs
                .get(&id)
                .copied()
                .or_else(|| bound_insts.get(&id).copied())
                .ok_or(VerifyError::UnboundValue(v)),
            Value::Arg(n) => bound_args
                .get(&n)
                .copied()
                .ok_or(VerifyError::UnboundValue(v)),
        }
    };

    let mut cur = region.entry();
    let mut pred: Option<needle_ir::BlockId> = None;
    let mut steps = 0u64;
    let committed = loop {
        let block = func.block(cur);

        // φs evaluate simultaneously on block entry. Entry-block φs are
        // live-ins (already bound); the walk skips them.
        let mut phi_vals: Vec<(InstId, Val)> = Vec::new();
        for &iid in &block.insts {
            let inst = func.inst(iid);
            if !inst.is_phi() {
                break;
            }
            if cur == region.entry() {
                continue;
            }
            let p = pred.ok_or(VerifyError::PhiMissingIncoming(iid))?;
            let v = inst
                .phi_incoming(p)
                .ok_or(VerifyError::PhiMissingIncoming(iid))?;
            phi_vals.push((iid, read(&regs, v)?));
        }
        for (iid, v) in phi_vals {
            regs.insert(iid, v);
        }

        for &iid in &block.insts {
            let inst = func.inst(iid);
            if inst.is_phi() {
                continue;
            }
            steps += 1;
            if steps > REF_STEP_LIMIT {
                return Err(VerifyError::StepLimit(REF_STEP_LIMIT));
            }
            let v = match inst.op {
                Op::Load => {
                    let addr = read(&regs, inst.args[0])?.as_int() as u64;
                    mem.load(addr, inst.ty)
                }
                Op::Store => {
                    let v = read(&regs, inst.args[0])?;
                    let addr = read(&regs, inst.args[1])?.as_int() as u64;
                    mem.store(addr, v);
                    Val::Int(0)
                }
                Op::Call(_) => return Err(VerifyError::CallInRegion(iid)),
                Op::Phi => unreachable!("phis handled on block entry"),
                pure => {
                    let mut vals = Vec::with_capacity(inst.args.len());
                    for a in &inst.args {
                        vals.push(read(&regs, *a)?);
                    }
                    eval_pure(pure, &vals, inst.imm)
                        .ok_or(VerifyError::UnboundValue(Value::Inst(iid)))?
                }
            };
            regs.insert(iid, v);
        }

        // The exit block completes the invocation: frame lowering stops
        // there too (its terminator contributes no guards).
        if cur == region.exit() {
            break true;
        }

        let next = match &block.term {
            Terminator::Br(t) => *t,
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                if read(&regs, *cond)?.as_bool() {
                    *then_bb
                } else {
                    *else_bb
                }
            }
            // Leaving by return/unreachable before the exit block means
            // the frame's speculation missed.
            Terminator::Ret(_) | Terminator::Unreachable => break false,
        };
        if !region.edges.contains(&(cur, next)) {
            // Control leaves the region early: the guard on this branch
            // would have failed.
            break false;
        }
        pred = Some(cur);
        cur = next;
    };

    let live_outs = frame
        .live_outs
        .iter()
        .map(|lo| regs.get(&lo.inst).copied())
        .collect();
    Ok(RefRun {
        committed,
        live_outs,
        mem: mem.clone(),
    })
}

/// Differentially verify one frame invocation.
///
/// * `snapshot` — memory image taken **before** the invocation ran;
/// * `mem_after` — memory image **after** the invocation (post-rollback
///   for aborts, post-commit for commits);
/// * `live_ins` — the *effective* live-in values the frame executed with
///   (any injected corruption already applied);
/// * `outcome` — what `run_frame_with` reported.
///
/// Abort path: `mem_after` must be bit-identical to `snapshot`.
/// Commit path: the reference walk from `snapshot` must also commit, and
/// `mem_after` plus the committed live-outs must match it bit-exactly.
/// Injected aborts ([`crate::exec::AbortCause::Injected`] /
/// [`crate::exec::AbortCause::Killed`]) skip the commit-agreement check:
/// the reference has no notion of the fault, only of atomicity.
///
/// # Errors
/// Structural problems only ([`VerifyError`]); a found bug is a
/// [`Divergence`] inside the `Ok` verdict.
pub fn verify_invocation(
    func: &Function,
    frame: &Frame,
    live_ins: &[Val],
    snapshot: &MemSnapshot,
    mem_after: &Memory,
    outcome: &FrameOutcome,
) -> Result<Verdict, VerifyError> {
    let mut divergences = Vec::new();
    match outcome {
        FrameOutcome::Aborted { cause, .. } => {
            for delta in mem_after.diff(snapshot) {
                divergences.push(Divergence::AbortLeak(delta));
            }
            // A *guard* abort also claims the input leaves the region:
            // cross-check against the reference walk.
            if let crate::exec::AbortCause::Guard { .. } = cause {
                let mut ref_mem = snapshot.restore();
                let r = run_reference(func, frame, live_ins, &mut ref_mem)?;
                if r.committed {
                    divergences.push(Divergence::CommitDisagreement {
                        frame_committed: false,
                        reference_committed: true,
                    });
                }
            }
        }
        FrameOutcome::Committed { live_outs, .. } => {
            let mut ref_mem = snapshot.restore();
            let r = run_reference(func, frame, live_ins, &mut ref_mem)?;
            if !r.committed {
                divergences.push(Divergence::CommitDisagreement {
                    frame_committed: true,
                    reference_committed: false,
                });
            } else {
                let ref_snap = r.mem.snapshot();
                for delta in mem_after.diff(&ref_snap) {
                    divergences.push(Divergence::CommitMemMismatch(delta));
                }
                for (index, (frame_v, ref_v)) in
                    live_outs.iter().zip(&r.live_outs).enumerate()
                {
                    // Live-outs in untaken arms have no architectural
                    // value; the host never reads them.
                    let Some(ref_v) = ref_v else { continue };
                    if frame_v.to_bits() != ref_v.to_bits() {
                        divergences.push(Divergence::LiveOutMismatch {
                            index,
                            frame: *frame_v,
                            reference: *ref_v,
                        });
                    }
                }
            }
        }
    }
    Ok(Verdict { divergences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_frame;
    use crate::exec::{run_frame, run_frame_with};
    use crate::inject::{FaultInjector, FaultKind, InjectorConfig};
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::{BlockId, Type, Value as V};
    use needle_regions::OffloadRegion;

    /// z = x + y; if z > 10 { store z -> p; out = z*2 } else cold
    fn guarded() -> (Function, Frame) {
        let mut fb =
            FunctionBuilder::new("g", &[Type::I64, Type::I64, Type::Ptr], Some(Type::I64));
        let entry = fb.entry();
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        let done = fb.block("done");
        fb.switch_to(entry);
        let z = fb.add(fb.arg(0), fb.arg(1));
        let c = fb.icmp_sgt(z, V::int(10));
        fb.cond_br(c, hot, cold);
        fb.switch_to(hot);
        fb.store(z, fb.arg(2));
        let out = fb.mul(z, V::int(2));
        fb.br(done);
        fb.switch_to(cold);
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(hot, out), (cold, V::int(0))]);
        fb.ret(Some(r));
        let f = fb.finish();
        let region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 10, 0.9);
        let frame = build_frame(&f, &region).unwrap();
        (f, frame)
    }

    #[test]
    fn clean_commit_verifies() {
        let (f, frame) = guarded();
        let ins = [Val::Int(7), Val::Int(8), Val::Int(64)];
        let mut mem = Memory::new();
        mem.store(64, Val::Int(-1));
        let snap = mem.snapshot();
        let out = run_frame(&frame, &ins, &mut mem).unwrap();
        assert!(out.committed());
        let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &out).unwrap();
        assert!(v.is_clean(), "{:?}", v.divergences);
    }

    #[test]
    fn clean_guard_abort_verifies() {
        let (f, frame) = guarded();
        let ins = [Val::Int(2), Val::Int(3), Val::Int(64)];
        let mut mem = Memory::new();
        mem.store(64, Val::Int(-1));
        let snap = mem.snapshot();
        let out = run_frame(&frame, &ins, &mut mem).unwrap();
        assert!(!out.committed());
        let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &out).unwrap();
        assert!(v.is_clean(), "{:?}", v.divergences);
    }

    #[test]
    fn injected_aborts_verify_clean_rollback() {
        let (f, frame) = guarded();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 11,
            fault_rate: 1.0,
            kinds: vec![FaultKind::ForceGuardFail, FaultKind::KillAtOp],
        });
        for x in -20i64..20 {
            let ins = [Val::Int(x), Val::Int(8), Val::Int(64)];
            let mut mem = Memory::new();
            mem.store(64, Val::Int(x * 17));
            let snap = mem.snapshot();
            let out = run_frame_with(&frame, &ins, &mut mem, Some(&mut inj)).unwrap();
            if out.committed() {
                continue; // fault_rate 1.0: never happens, defensive
            }
            let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &out).unwrap();
            assert!(v.is_clean(), "x={x}: {:?}", v.divergences);
        }
    }

    #[test]
    fn truncated_undo_is_caught_as_abort_leak() {
        let (f, frame) = guarded();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 2,
            fault_rate: 1.0,
            kinds: vec![FaultKind::TruncateUndo],
        });
        let ins = [Val::Int(7), Val::Int(8), Val::Int(64)];
        let mut mem = Memory::new();
        mem.store(64, Val::Int(500));
        let snap = mem.snapshot();
        let out = run_frame_with(&frame, &ins, &mut mem, Some(&mut inj)).unwrap();
        assert!(!out.committed());
        assert_eq!(inj.expected_corruptions(), 1);
        let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &out).unwrap();
        assert!(
            v.divergences
                .iter()
                .any(|d| matches!(d, Divergence::AbortLeak(_))),
            "verifier must catch the leaked store: {:?}",
            v.divergences
        );
    }

    #[test]
    fn tampered_commit_memory_is_caught() {
        let (f, frame) = guarded();
        let ins = [Val::Int(7), Val::Int(8), Val::Int(64)];
        let mut mem = Memory::new();
        let snap = mem.snapshot();
        let out = run_frame(&frame, &ins, &mut mem).unwrap();
        assert!(out.committed());
        // Simulate a wild write the frame never made.
        mem.store(1024, Val::Int(666));
        let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &out).unwrap();
        assert!(v
            .divergences
            .iter()
            .any(|d| matches!(d, Divergence::CommitMemMismatch(MemDelta { addr: 1024, .. }))));
    }

    #[test]
    fn tampered_live_out_is_caught() {
        let (f, frame) = guarded();
        let ins = [Val::Int(7), Val::Int(8), Val::Int(64)];
        let mut mem = Memory::new();
        let snap = mem.snapshot();
        let out = run_frame(&frame, &ins, &mut mem).unwrap();
        let FrameOutcome::Committed { mut live_outs, stores } = out else {
            panic!()
        };
        live_outs[0] = Val::Int(12345);
        let tampered = FrameOutcome::Committed { live_outs, stores };
        let v = verify_invocation(&f, &frame, &ins, &snap, &mem, &tampered).unwrap();
        assert!(v
            .divergences
            .iter()
            .any(|d| matches!(d, Divergence::LiveOutMismatch { .. })));
    }

    #[test]
    fn reference_tracks_region_departure() {
        let (f, frame) = guarded();
        // 2 + 3 = 5 ≤ 10: control takes the cold edge, leaving the path
        // region → not committed.
        let mut mem = Memory::new();
        let r = run_reference(&f, &frame, &[Val::Int(2), Val::Int(3), Val::Int(64)], &mut mem)
            .unwrap();
        assert!(!r.committed);
        // 7 + 8 = 15 > 10: stays on the path.
        let mut mem = Memory::new();
        let r = run_reference(&f, &frame, &[Val::Int(7), Val::Int(8), Val::Int(64)], &mut mem)
            .unwrap();
        assert!(r.committed);
        assert_eq!(mem.peek(64), 15);
    }

    #[test]
    fn live_in_arity_is_checked() {
        let (f, frame) = guarded();
        let mut mem = Memory::new();
        let err = run_reference(&f, &frame, &[Val::Int(1)], &mut mem).unwrap_err();
        assert!(matches!(err, VerifyError::LiveInArity { expected: 3, got: 1 }));
    }
}
