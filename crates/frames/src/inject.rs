//! Seeded fault injection for frame execution (the chaos harness).
//!
//! A [`FaultInjector`] is threaded through
//! [`run_frame_with`](crate::exec::run_frame_with) and perturbs
//! invocations at four points in the speculation lifecycle:
//!
//! * **ForceGuardFail** — the invocation aborts at guard-check time even
//!   though every guard passed, exercising the rollback path on inputs
//!   that would have committed;
//! * **CorruptLiveIn** — one live-in value has a random bit mask XORed in
//!   before execution, modelling a host→accelerator transfer fault;
//! * **KillAtOp** — execution stops cold at a chosen op index (mid-frame
//!   power loss / preemption) and must roll back whatever partial state
//!   exists;
//! * **TruncateUndo** — the invocation is aborted *and* the tail of the
//!   undo log is dropped before replay, deliberately breaking the
//!   atomicity invariant so that differential verification can be shown
//!   to catch real corruption.
//!
//! All randomness comes from a single seeded RNG, so a campaign is
//! reproducible from `(seed, fault count)` alone. Every decision is
//! recorded in [`FaultInjector::log`]; the differential verifier replays
//! the same faults against the reference interpreter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::Frame;

/// The four fault classes, as selectors (parameters are drawn per
/// injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort an invocation whose guards all passed.
    ForceGuardFail,
    /// Flip random bits in one live-in before execution.
    CorruptLiveIn,
    /// Stop execution at an op index and roll back.
    KillAtOp,
    /// Abort and drop the tail of the undo log before replay
    /// (intentionally corrupting — detection is the property under test).
    TruncateUndo,
}

/// A concrete planned fault for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort at guard-check time regardless of guard results.
    ForceGuardFail,
    /// XOR `mask` into live-in `index` before execution.
    CorruptLiveIn {
        /// Index into [`Frame::live_ins`].
        index: usize,
        /// Non-zero bit mask XORed into the raw value bits.
        mask: u64,
    },
    /// Stop execution just before op `index` and roll back.
    KillAtOp {
        /// Index into [`Frame::ops`] (clamped to the op count).
        index: usize,
    },
    /// Abort and drop the last `drop` undo-log entries before replay.
    TruncateUndo {
        /// Entries removed from the tail of the undo log.
        drop: usize,
    },
}

impl Fault {
    /// The class this concrete fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::ForceGuardFail => FaultKind::ForceGuardFail,
            Fault::CorruptLiveIn { .. } => FaultKind::CorruptLiveIn,
            Fault::KillAtOp { .. } => FaultKind::KillAtOp,
            Fault::TruncateUndo { .. } => FaultKind::TruncateUndo,
        }
    }
}

/// Injection policy: which faults are live and how often they fire.
#[derive(Debug, Clone)]
pub struct InjectorConfig {
    /// RNG seed; a campaign is reproducible from this alone.
    pub seed: u64,
    /// Probability an invocation receives a fault (1.0 = every one).
    pub fault_rate: f64,
    /// Enabled fault classes, sampled uniformly. Empty disables injection.
    pub kinds: Vec<FaultKind>,
}

impl Default for InjectorConfig {
    fn default() -> InjectorConfig {
        InjectorConfig {
            seed: 0,
            fault_rate: 1.0,
            // TruncateUndo is opt-in: it intentionally corrupts memory, so
            // recoverable-fault campaigns exclude it by default.
            kinds: vec![
                FaultKind::ForceGuardFail,
                FaultKind::CorruptLiveIn,
                FaultKind::KillAtOp,
            ],
        }
    }
}

/// One injection decision, kept so campaigns can replay or audit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// 0-based index of the invocation (as seen by this injector).
    pub invocation: u64,
    /// The fault applied.
    pub fault: Fault,
    /// For [`Fault::TruncateUndo`]: whether dropping the tail actually
    /// leaves memory different from the pre-invocation image (a dropped
    /// entry can be redundant). Always `false` for other faults.
    pub corrupts_memory: bool,
}

/// Seeded fault source threaded through frame execution.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: InjectorConfig,
    rng: StdRng,
    invocations: u64,
    /// Every fault injected so far, in invocation order.
    pub log: Vec<InjectionRecord>,
}

impl FaultInjector {
    /// An injector with an explicit policy.
    pub fn new(cfg: InjectorConfig) -> FaultInjector {
        let rng = StdRng::seed_from_u64(cfg.seed);
        FaultInjector {
            cfg,
            rng,
            invocations: 0,
            log: Vec::new(),
        }
    }

    /// Default policy (recoverable faults, every invocation) from a seed.
    pub fn seeded(seed: u64) -> FaultInjector {
        FaultInjector::new(InjectorConfig {
            seed,
            ..InjectorConfig::default()
        })
    }

    /// Total invocations observed (faulted or not).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Decide the fault (if any) for the next invocation of `frame`.
    /// Called once per invocation by `run_frame_with`; the decision is
    /// appended to [`FaultInjector::log`].
    pub fn plan(&mut self, frame: &Frame) -> Option<Fault> {
        let inv = self.invocations;
        self.invocations += 1;
        if self.cfg.kinds.is_empty() || !self.rng.gen_bool(self.cfg.fault_rate.clamp(0.0, 1.0)) {
            return None;
        }
        let kind = self.cfg.kinds[self.rng.gen_range(0..self.cfg.kinds.len())];
        let fault = match kind {
            FaultKind::ForceGuardFail => Fault::ForceGuardFail,
            FaultKind::CorruptLiveIn => {
                if frame.live_ins.is_empty() {
                    Fault::ForceGuardFail
                } else {
                    Fault::CorruptLiveIn {
                        index: self.rng.gen_range(0..frame.live_ins.len()),
                        mask: self.rng.gen_range(1u64..=u64::MAX),
                    }
                }
            }
            FaultKind::KillAtOp => {
                if frame.ops.is_empty() {
                    Fault::ForceGuardFail
                } else {
                    Fault::KillAtOp {
                        index: self.rng.gen_range(0..frame.ops.len()),
                    }
                }
            }
            FaultKind::TruncateUndo => Fault::TruncateUndo {
                drop: self.rng.gen_range(1usize..=4),
            },
        };
        self.log.push(InjectionRecord {
            invocation: inv,
            fault,
            corrupts_memory: false,
        });
        Some(fault)
    }

    /// Mark the most recent injection as memory-corrupting (set by the
    /// executor when a truncated rollback provably diverges).
    pub fn note_corruption(&mut self) {
        if let Some(rec) = self.log.last_mut() {
            rec.corrupts_memory = true;
        }
    }

    /// Injections whose rollback corruption went live (what a verifier
    /// MUST flag).
    pub fn expected_corruptions(&self) -> usize {
        self.log.iter().filter(|r| r.corrupts_memory).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::{Type, Value};
    use needle_regions::OffloadRegion;

    fn tiny_frame(ops: usize, live_ins: usize) -> Frame {
        use crate::frame::{FrameOp, FrameOpKind, LiveIn};
        Frame {
            ops: (0..ops)
                .map(|_| FrameOp {
                    kind: FrameOpKind::Compute(needle_ir::Op::Add),
                    args: vec![
                        crate::frame::FrameValue::Const(needle_ir::Constant::Int(1)),
                        crate::frame::FrameValue::Const(needle_ir::Constant::Int(2)),
                    ],
                    ty: Type::I64,
                    pred: None,
                    src: None,
                    imm: 0,
                })
                .collect(),
            live_ins: (0..live_ins)
                .map(|i| LiveIn {
                    value: Value::Arg(i as u32),
                    ty: Type::I64,
                })
                .collect(),
            live_outs: vec![],
            guards: vec![],
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
        }
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let frame = tiny_frame(8, 2);
        let mut a = FaultInjector::seeded(42);
        let mut b = FaultInjector::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.plan(&frame), b.plan(&frame));
        }
        assert_eq!(a.log, b.log);
        assert_eq!(a.invocations(), 100);
    }

    #[test]
    fn fault_rate_zero_never_fires() {
        let frame = tiny_frame(4, 1);
        let mut inj = FaultInjector::new(InjectorConfig {
            fault_rate: 0.0,
            ..InjectorConfig::default()
        });
        for _ in 0..50 {
            assert_eq!(inj.plan(&frame), None);
        }
        assert!(inj.log.is_empty());
    }

    #[test]
    fn parameters_respect_frame_shape() {
        let frame = tiny_frame(5, 3);
        let mut inj = FaultInjector::seeded(7);
        for _ in 0..200 {
            match inj.plan(&frame) {
                Some(Fault::CorruptLiveIn { index, mask }) => {
                    assert!(index < 3);
                    assert_ne!(mask, 0);
                }
                Some(Fault::KillAtOp { index }) => assert!(index < 5),
                Some(Fault::ForceGuardFail) | None => {}
                Some(Fault::TruncateUndo { .. }) => {
                    panic!("TruncateUndo is opt-in and was not enabled")
                }
            }
        }
    }

    #[test]
    fn degenerate_frames_fall_back_to_guard_fail() {
        // No live-ins and no ops: CorruptLiveIn/KillAtOp degrade to
        // ForceGuardFail instead of panicking on empty ranges.
        let frame = tiny_frame(0, 0);
        let mut inj = FaultInjector::seeded(3);
        for _ in 0..100 {
            if let Some(f) = inj.plan(&frame) {
                assert_eq!(f, Fault::ForceGuardFail);
            }
        }
    }
}
