//! Atomic frame execution with undo-log rollback.
//!
//! Executes a [`Frame`] the way the accelerator would (§V): every op runs
//! speculatively in dataflow order, stores capture the old memory value
//! into the undo log, and guards are checked *at the end of the invocation*
//! (the paper's conservative assumption). If any guard failed, the undo log
//! is replayed in reverse and the frame reports an abort — externally
//! visible memory is untouched.

use std::collections::HashMap;
use std::fmt;

use needle_ir::interp::{eval_pure, Memory, Val};

use crate::frame::{Frame, FrameOpKind, FrameValue};
use crate::inject::{Fault, FaultInjector};

/// Why an invocation aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// A real guard failed speculation.
    Guard {
        /// Index (into [`Frame::guards`]) of the first failed guard.
        failed_guard: usize,
    },
    /// An injected [`Fault::ForceGuardFail`] or [`Fault::TruncateUndo`]
    /// aborted an invocation whose guards all passed.
    Injected,
    /// An injected [`Fault::KillAtOp`] stopped execution mid-frame.
    Killed {
        /// The op index at which execution stopped.
        at_op: usize,
    },
}

/// Result of one frame invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// Every guard passed: stores are committed, live-outs returned.
    Committed {
        /// Live-out values in [`Frame::live_outs`] order.
        live_outs: Vec<Val>,
        /// Stores performed (undo-log entries written).
        stores: usize,
    },
    /// The invocation aborted (guard failure or injected fault) and the
    /// undo log was replayed.
    Aborted {
        /// What triggered the abort.
        cause: AbortCause,
        /// Undo-log entries replayed during rollback.
        rolled_back: usize,
    },
}

impl FrameOutcome {
    /// Whether the invocation committed.
    pub fn committed(&self) -> bool {
        matches!(self, FrameOutcome::Committed { .. })
    }
}

/// Frame execution errors (malformed frames only; guard failures are a
/// normal [`FrameOutcome::Aborted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFrameError {
    /// The live-in vector does not match the frame's signature.
    LiveInArity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// An op referenced a value slot that does not exist (forward
    /// reference, out-of-range live-in, or missing argument).
    MalformedFrame {
        /// Index of the offending op.
        op: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for ExecFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecFrameError::LiveInArity { expected, got } => {
                write!(f, "expected {expected} live-ins, got {got}")
            }
            ExecFrameError::MalformedFrame { op, what } => {
                write!(f, "malformed frame at op {op}: {what}")
            }
        }
    }
}

impl std::error::Error for ExecFrameError {}

/// Execute `frame` once against `mem`.
///
/// # Errors
/// Fails if `live_ins.len()` does not match the frame signature.
pub fn run_frame(
    frame: &Frame,
    live_ins: &[Val],
    mem: &mut Memory,
) -> Result<FrameOutcome, ExecFrameError> {
    run_frame_with(frame, live_ins, mem, None)
}

/// Execute `frame` once against `mem`, optionally perturbed by a
/// [`FaultInjector`]. The injector plans at most one fault per
/// invocation:
///
/// * [`Fault::CorruptLiveIn`] rewrites one live-in before execution;
/// * [`Fault::KillAtOp`] stops the op loop early and rolls back;
/// * [`Fault::ForceGuardFail`] aborts at guard-check time;
/// * [`Fault::TruncateUndo`] aborts *and* drops the tail of the undo log
///   before replay — the only fault allowed to corrupt memory, flagged
///   via [`FaultInjector::note_corruption`] when the loss is real.
///
/// # Errors
/// Fails on live-in arity mismatch or a structurally malformed frame
/// (bad operand references); guard failures and injected aborts are
/// normal [`FrameOutcome::Aborted`] results.
pub fn run_frame_with(
    frame: &Frame,
    live_ins: &[Val],
    mem: &mut Memory,
    mut injector: Option<&mut FaultInjector>,
) -> Result<FrameOutcome, ExecFrameError> {
    if live_ins.len() != frame.live_ins.len() {
        return Err(ExecFrameError::LiveInArity {
            expected: frame.live_ins.len(),
            got: live_ins.len(),
        });
    }
    let fault = injector.as_mut().and_then(|inj| inj.plan(frame));

    // Apply live-in corruption on a local copy; callers keep their slice.
    let mut live_vals: Vec<Val> = live_ins.to_vec();
    if let Some(Fault::CorruptLiveIn { index, mask }) = fault {
        let ty = frame.live_ins[index].ty;
        live_vals[index] = Val::from_bits(live_vals[index].to_bits() ^ mask, ty);
    }
    let kill_at = match fault {
        Some(Fault::KillAtOp { index }) => Some(index.min(frame.ops.len())),
        _ => None,
    };

    let read = |vals: &[Val], v: FrameValue, at: usize| -> Result<Val, ExecFrameError> {
        match v {
            FrameValue::Op(i) => vals.get(i).copied().ok_or(ExecFrameError::MalformedFrame {
                op: at,
                what: "operand references an op outside the evaluated prefix",
            }),
            FrameValue::LiveIn(i) => {
                live_vals
                    .get(i)
                    .copied()
                    .ok_or(ExecFrameError::MalformedFrame {
                        op: at,
                        what: "operand references an out-of-range live-in",
                    })
            }
            FrameValue::Const(c) => Ok(Val::from(c)),
        }
    };
    let arg = |op: &crate::frame::FrameOp, n: usize, at: usize| -> Result<FrameValue, ExecFrameError> {
        op.args.get(n).copied().ok_or(ExecFrameError::MalformedFrame {
            op: at,
            what: "op is missing a required argument",
        })
    };

    let mut vals: Vec<Val> = vec![Val::Int(0); frame.ops.len()];
    let mut undo: Vec<(u64, u64)> = Vec::new();
    let mut failed: Option<usize> = None;
    let mut killed: Option<usize> = None;

    for (i, op) in frame.ops.iter().enumerate() {
        if kill_at == Some(i) {
            killed = Some(i);
            break;
        }
        let pred_on = match op.pred {
            Some(p) => read(&vals[..i], p, i)?.as_bool(),
            None => true,
        };
        match op.kind {
            FrameOpKind::Compute(o) => {
                // `eval_pure` indexes its argument slice directly; check the
                // arity up front so a truncated op is a typed error, not a
                // panic inside the interpreter.
                if op.args.len() < o.arity() {
                    return Err(ExecFrameError::MalformedFrame {
                        op: i,
                        what: "compute op is missing arguments",
                    });
                }
                let mut args = Vec::with_capacity(op.args.len());
                for a in &op.args {
                    args.push(read(&vals[..i], *a, i)?);
                }
                vals[i] =
                    eval_pure(o, &args, op.imm).ok_or(ExecFrameError::MalformedFrame {
                        op: i,
                        what: "compute op is not pure",
                    })?;
            }
            FrameOpKind::Load => {
                let addr = read(&vals[..i], arg(op, 0, i)?, i)?.as_int() as u64;
                vals[i] = mem.load(addr, op.ty);
            }
            FrameOpKind::Store => {
                if pred_on {
                    let v = read(&vals[..i], arg(op, 0, i)?, i)?;
                    let addr = read(&vals[..i], arg(op, 1, i)?, i)?.as_int() as u64;
                    undo.push((addr, mem.peek(addr)));
                    mem.store(addr, v);
                }
                vals[i] = Val::Int(0);
            }
            FrameOpKind::Guard { expected } => {
                let actual = read(&vals[..i], arg(op, 0, i)?, i)?.as_bool();
                let pass = !pred_on || actual == expected;
                vals[i] = Val::Int(pass as i64);
                if !pass && failed.is_none() {
                    failed = Some(frame.guards.iter().position(|g| *g == i).unwrap_or(0));
                }
            }
        }
    }

    // Injected aborts: a kill always aborts; ForceGuardFail/TruncateUndo
    // abort even when every guard passed.
    let forced_abort = matches!(
        fault,
        Some(Fault::ForceGuardFail) | Some(Fault::TruncateUndo { .. })
    );
    let cause = match (killed, failed) {
        (Some(at_op), _) => Some(AbortCause::Killed { at_op }),
        (None, Some(g)) => Some(AbortCause::Guard { failed_guard: g }),
        (None, None) if forced_abort => Some(AbortCause::Injected),
        (None, None) => None,
    };

    match cause {
        Some(cause) => {
            // TruncateUndo drops the tail of the log before replay.
            let keep = match fault {
                Some(Fault::TruncateUndo { drop }) => undo.len().saturating_sub(drop),
                _ => undo.len(),
            };
            if keep < undo.len() {
                // Decide whether the loss is real: replaying only the kept
                // prefix must still restore every touched cell to its
                // pre-invocation bits (the *first* logged old value).
                let mut first_old: HashMap<u64, u64> = HashMap::new();
                for &(addr, old) in &undo {
                    first_old.entry(addr).or_insert(old);
                }
                let mut kept_first_old: HashMap<u64, u64> = HashMap::new();
                for &(addr, old) in &undo[..keep] {
                    kept_first_old.entry(addr).or_insert(old);
                }
                let corrupts = first_old.iter().any(|(addr, pre)| {
                    let after_rollback = kept_first_old
                        .get(addr)
                        .copied()
                        .unwrap_or_else(|| mem.peek(*addr));
                    after_rollback != *pre
                });
                if corrupts {
                    if let Some(inj) = injector.as_mut() {
                        inj.note_corruption();
                    }
                }
                undo.truncate(keep);
            }
            let rolled_back = undo.len();
            for (addr, old) in undo.into_iter().rev() {
                mem.store(addr, Val::from_bits(old, needle_ir::Type::I64));
            }
            Ok(FrameOutcome::Aborted { cause, rolled_back })
        }
        None => {
            let n = frame.ops.len();
            let mut live_outs = Vec::with_capacity(frame.live_outs.len());
            for lo in &frame.live_outs {
                live_outs.push(read(&vals[..n], lo.value, n)?);
            }
            Ok(FrameOutcome::Committed {
                live_outs,
                stores: undo.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::{BlockId, Type, Value as V};
    use needle_regions::OffloadRegion;

    use crate::build::build_frame;

    /// z = x + y; if z > 10 { store z -> p; out = z * 2 } (hot path region)
    fn guarded_frame() -> Frame {
        let mut fb = FunctionBuilder::new("g", &[Type::I64, Type::I64, Type::Ptr], Some(Type::I64));
        let entry = fb.entry();
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        let done = fb.block("done");
        fb.switch_to(entry);
        let z = fb.add(fb.arg(0), fb.arg(1));
        let c = fb.icmp_sgt(z, V::int(10));
        fb.cond_br(c, hot, cold);
        fb.switch_to(hot);
        fb.store(z, fb.arg(2));
        let out = fb.mul(z, V::int(2));
        fb.br(done);
        fb.switch_to(cold);
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(hot, out), (cold, V::int(0))]);
        fb.ret(Some(r));
        let f = fb.finish();
        let region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 10, 0.9);
        build_frame(&f, &region).unwrap()
    }

    #[test]
    fn commit_applies_stores_and_returns_live_outs() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(7), Val::Int(8), Val::Int(64)], &mut mem).unwrap();
        match out {
            FrameOutcome::Committed { live_outs, stores } => {
                assert_eq!(stores, 1);
                assert_eq!(live_outs, vec![Val::Int(30)]); // (7+8)*2
            }
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(mem.load(64, Type::I64), Val::Int(15));
    }

    #[test]
    fn abort_rolls_back_memory_exactly() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        mem.store(64, Val::Int(999));
        let before = mem.peek(64);
        // 2 + 3 = 5, guard (z > 10) fails.
        let out = run_frame(&frame, &[Val::Int(2), Val::Int(3), Val::Int(64)], &mut mem).unwrap();
        match out {
            FrameOutcome::Aborted { cause, rolled_back } => {
                assert_eq!(cause, AbortCause::Guard { failed_guard: 0 });
                assert_eq!(rolled_back, 1); // the speculative store was undone
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(mem.peek(64), before);
        assert!(!out.committed());
    }

    #[test]
    fn live_in_arity_is_checked() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        let err = run_frame(&frame, &[Val::Int(1)], &mut mem).unwrap_err();
        assert_eq!(
            err,
            ExecFrameError::LiveInArity {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn forced_guard_fail_aborts_a_committing_input() {
        use crate::inject::{FaultInjector, FaultKind, InjectorConfig};
        let frame = guarded_frame();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 1,
            fault_rate: 1.0,
            kinds: vec![FaultKind::ForceGuardFail],
        });
        let mut mem = Memory::new();
        mem.store(64, Val::Int(777));
        let snap = mem.snapshot();
        // 7 + 8 = 15 > 10: would commit without the fault.
        let out = run_frame_with(
            &frame,
            &[Val::Int(7), Val::Int(8), Val::Int(64)],
            &mut mem,
            Some(&mut inj),
        )
        .unwrap();
        match out {
            FrameOutcome::Aborted { cause, rolled_back } => {
                assert_eq!(cause, AbortCause::Injected);
                assert_eq!(rolled_back, 1);
            }
            other => panic!("expected injected abort, got {other:?}"),
        }
        assert!(mem.same_as(&snap), "rollback must restore memory");
        assert_eq!(inj.log.len(), 1);
    }

    #[test]
    fn kill_at_op_rolls_back_partial_stores() {
        use crate::inject::{Fault, FaultInjector, FaultKind, InjectorConfig};
        let frame = guarded_frame();
        // Find the store op, then kill just after it so its undo entry is
        // live when execution stops.
        let store_idx = frame
            .ops
            .iter()
            .position(|op| matches!(op.kind, FrameOpKind::Store))
            .unwrap();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 0,
            fault_rate: 1.0,
            kinds: vec![FaultKind::KillAtOp],
        });
        // Draw plans until one kills after the store (seeded, so this is
        // deterministic); run each against a fresh memory.
        for _ in 0..64 {
            let mut mem = Memory::new();
            mem.store(64, Val::Int(31337));
            let snap = mem.snapshot();
            let out = run_frame_with(
                &frame,
                &[Val::Int(7), Val::Int(8), Val::Int(64)],
                &mut mem,
                Some(&mut inj),
            )
            .unwrap();
            let FrameOutcome::Aborted { cause, rolled_back } = out else {
                panic!("kill must abort: {out:?}");
            };
            assert!(mem.same_as(&snap), "partial execution must roll back");
            let Some(rec) = inj.log.last() else { panic!() };
            let Fault::KillAtOp { index } = rec.fault else { panic!() };
            assert_eq!(cause, AbortCause::Killed { at_op: index });
            if index > store_idx {
                assert_eq!(rolled_back, 1, "store before kill point is undone");
                return;
            }
        }
        panic!("no plan killed after the store op");
    }

    #[test]
    fn truncate_undo_corruption_is_flagged() {
        use crate::inject::{FaultInjector, FaultKind, InjectorConfig};
        let frame = guarded_frame();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 5,
            fault_rate: 1.0,
            kinds: vec![FaultKind::TruncateUndo],
        });
        let mut mem = Memory::new();
        mem.store(64, Val::Int(4242));
        let snap = mem.snapshot();
        let out = run_frame_with(
            &frame,
            &[Val::Int(7), Val::Int(8), Val::Int(64)],
            &mut mem,
            Some(&mut inj),
        )
        .unwrap();
        assert!(!out.committed());
        // The single undo entry was dropped: the speculative store leaks.
        assert_eq!(mem.peek(64), 15, "corruption must actually land");
        assert!(!mem.same_as(&snap));
        assert_eq!(inj.expected_corruptions(), 1, "injector must flag it");
    }

    #[test]
    fn corrupt_live_in_changes_execution_deterministically() {
        use crate::inject::{Fault, FaultInjector, FaultKind, InjectorConfig};
        let frame = guarded_frame();
        let mut inj = FaultInjector::new(InjectorConfig {
            seed: 9,
            fault_rate: 1.0,
            kinds: vec![FaultKind::CorruptLiveIn],
        });
        let ins = [Val::Int(7), Val::Int(8), Val::Int(64)];
        let mut mem = Memory::new();
        let out = run_frame_with(&frame, &ins, &mut mem, Some(&mut inj)).unwrap();
        // Replaying the logged fault by hand must reproduce the outcome.
        let Some(rec) = inj.log.last() else { panic!() };
        let Fault::CorruptLiveIn { index, mask } = rec.fault else {
            panic!("{:?}", rec.fault)
        };
        let mut corrupted: Vec<Val> = ins.to_vec();
        corrupted[index] =
            Val::from_bits(corrupted[index].to_bits() ^ mask, frame.live_ins[index].ty);
        let mut mem2 = Memory::new();
        let replay = run_frame(&frame, &corrupted, &mut mem2).unwrap();
        assert_eq!(out, replay);
        assert_eq!(mem.peek(64), mem2.peek(64));
    }

    #[test]
    fn malformed_operand_reference_is_an_error_not_a_panic() {
        let mut frame = guarded_frame();
        // Point the first op's first argument at a nonexistent op slot.
        frame.ops[0].args[0] = FrameValue::Op(usize::MAX);
        let mut mem = Memory::new();
        let err = run_frame(&frame, &[Val::Int(1), Val::Int(2), Val::Int(64)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, ExecFrameError::MalformedFrame { op: 0, .. }), "{err}");
    }

    #[test]
    fn predicated_store_in_braid_only_fires_on_taken_arm() {
        // Braid: if c { store 1 -> p } else { store 2 -> q }
        let mut fb = FunctionBuilder::new("b", &[Type::I64, Type::Ptr, Type::Ptr], None);
        let entry = fb.entry();
        let t = fb.block("t");
        let e = fb.block("e");
        let done = fb.block("done");
        fb.switch_to(entry);
        let c = fb.icmp_sgt(fb.arg(0), V::int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.store(V::int(1), fb.arg(1));
        fb.br(done);
        fb.switch_to(e);
        fb.store(V::int(2), fb.arg(2));
        fb.br(done);
        fb.switch_to(done);
        fb.ret(None);
        let f = fb.finish();
        let mut region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 1, 1.0);
        region.blocks = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        region.edges.insert((BlockId(0), BlockId(2)));
        region.edges.insert((BlockId(2), BlockId(3)));
        let frame = build_frame(&f, &region).unwrap();

        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(5), Val::Int(0), Val::Int(8)], &mut mem).unwrap();
        assert!(out.committed());
        assert_eq!(mem.load(0, Type::I64), Val::Int(1));
        assert_eq!(mem.load(8, Type::I64), Val::Int(0)); // untaken arm's store suppressed

        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(-5), Val::Int(0), Val::Int(8)], &mut mem).unwrap();
        assert!(out.committed());
        assert_eq!(mem.load(0, Type::I64), Val::Int(0));
        assert_eq!(mem.load(8, Type::I64), Val::Int(2));
    }

    #[test]
    fn guard_in_untaken_arm_does_not_abort() {
        // Braid arm with a nested guard: if c { if d { .. } inside } else {}
        // Build: entry: c = a>0; br c, t, e; t: d = a>10; br d, t2, out(!);
        // t2: x=a+1; br done; e: br done; done.
        let mut fb = FunctionBuilder::new("n", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let t = fb.block("t");
        let t2 = fb.block("t2");
        let e = fb.block("e");
        let done = fb.block("done");
        let out_cold = fb.block("out_cold");
        fb.switch_to(entry);
        let c = fb.icmp_sgt(fb.arg(0), V::int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let d = fb.icmp_sgt(fb.arg(0), V::int(10));
        fb.cond_br(d, t2, out_cold);
        fb.switch_to(t2);
        let x = fb.add(fb.arg(0), V::int(1));
        fb.br(done);
        fb.switch_to(e);
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(t2, x), (e, V::int(0))]);
        fb.ret(Some(r));
        fb.switch_to(out_cold);
        fb.ret(Some(V::int(-1)));
        let f = fb.finish();

        let mut region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(2)], 1, 1.0);
        region.blocks = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4)];
        region.edges.insert((BlockId(0), BlockId(3)));
        region.edges.insert((BlockId(2), BlockId(4)));
        region.edges.insert((BlockId(3), BlockId(4)));
        let frame = build_frame(&f, &region).unwrap();
        assert_eq!(frame.guards.len(), 1); // the d-branch guard

        // a = -3: the else arm is taken; the guard in the untaken `t` arm
        // must not fire even though d = false.
        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(-3)], &mut mem).unwrap();
        assert!(out.committed(), "predicated-off guard must pass: {out:?}");

        // a = 5: t taken, d = false → genuine guard failure.
        let out = run_frame(&frame, &[Val::Int(5)], &mut mem).unwrap();
        assert!(!out.committed());

        // a = 20: t, t2 → commit with live-out 21.
        let out = run_frame(&frame, &[Val::Int(20)], &mut mem).unwrap();
        match out {
            FrameOutcome::Committed { live_outs, .. } => {
                assert_eq!(live_outs, vec![Val::Int(21)])
            }
            other => panic!("{other:?}"),
        }
    }
}
