//! Atomic frame execution with undo-log rollback.
//!
//! Executes a [`Frame`] the way the accelerator would (§V): every op runs
//! speculatively in dataflow order, stores capture the old memory value
//! into the undo log, and guards are checked *at the end of the invocation*
//! (the paper's conservative assumption). If any guard failed, the undo log
//! is replayed in reverse and the frame reports an abort — externally
//! visible memory is untouched.

use std::fmt;

use needle_ir::interp::{eval_pure, Memory, Val};

use crate::frame::{Frame, FrameOpKind, FrameValue};

/// Result of one frame invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// Every guard passed: stores are committed, live-outs returned.
    Committed {
        /// Live-out values in [`Frame::live_outs`] order.
        live_outs: Vec<Val>,
        /// Stores performed (undo-log entries written).
        stores: usize,
    },
    /// At least one guard failed: memory was rolled back.
    Aborted {
        /// Index (into [`Frame::guards`]) of the first failed guard.
        failed_guard: usize,
        /// Undo-log entries replayed during rollback.
        rolled_back: usize,
    },
}

impl FrameOutcome {
    /// Whether the invocation committed.
    pub fn committed(&self) -> bool {
        matches!(self, FrameOutcome::Committed { .. })
    }
}

/// Frame execution errors (malformed frames only; guard failures are a
/// normal [`FrameOutcome::Aborted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFrameError {
    /// The live-in vector does not match the frame's signature.
    LiveInArity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl fmt::Display for ExecFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecFrameError::LiveInArity { expected, got } => {
                write!(f, "expected {expected} live-ins, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecFrameError {}

/// Execute `frame` once against `mem`.
///
/// # Errors
/// Fails if `live_ins.len()` does not match the frame signature.
pub fn run_frame(
    frame: &Frame,
    live_ins: &[Val],
    mem: &mut Memory,
) -> Result<FrameOutcome, ExecFrameError> {
    if live_ins.len() != frame.live_ins.len() {
        return Err(ExecFrameError::LiveInArity {
            expected: frame.live_ins.len(),
            got: live_ins.len(),
        });
    }
    let read = |vals: &[Val], v: FrameValue| -> Val {
        match v {
            FrameValue::Op(i) => vals[i],
            FrameValue::LiveIn(i) => live_ins[i],
            FrameValue::Const(c) => Val::from(c),
        }
    };

    let mut vals: Vec<Val> = vec![Val::Int(0); frame.ops.len()];
    let mut undo: Vec<(u64, u64)> = Vec::new();
    let mut failed: Option<usize> = None;

    for (i, op) in frame.ops.iter().enumerate() {
        let pred_on = op
            .pred
            .map(|p| read(&vals, p).as_bool())
            .unwrap_or(true);
        match op.kind {
            FrameOpKind::Compute(o) => {
                let args: Vec<Val> = op.args.iter().map(|a| read(&vals, *a)).collect();
                vals[i] = eval_pure(o, &args, op.imm).expect("frame computes are pure");
            }
            FrameOpKind::Load => {
                let addr = read(&vals, op.args[0]).as_int() as u64;
                vals[i] = mem.load(addr, op.ty);
            }
            FrameOpKind::Store => {
                if pred_on {
                    let v = read(&vals, op.args[0]);
                    let addr = read(&vals, op.args[1]).as_int() as u64;
                    undo.push((addr, mem.peek(addr)));
                    mem.store(addr, v);
                }
                vals[i] = Val::Int(0);
            }
            FrameOpKind::Guard { expected } => {
                let actual = read(&vals, op.args[0]).as_bool();
                let pass = !pred_on || actual == expected;
                vals[i] = Val::Int(pass as i64);
                if !pass && failed.is_none() {
                    failed = Some(frame.guards.iter().position(|g| *g == i).unwrap_or(0));
                }
            }
        }
    }

    match failed {
        Some(g) => {
            let rolled_back = undo.len();
            for (addr, old) in undo.into_iter().rev() {
                mem.store(addr, Val::from_bits(old, needle_ir::Type::I64));
            }
            Ok(FrameOutcome::Aborted {
                failed_guard: g,
                rolled_back,
            })
        }
        None => {
            let live_outs = frame
                .live_outs
                .iter()
                .map(|lo| read(&vals, lo.value))
                .collect();
            Ok(FrameOutcome::Committed {
                live_outs,
                stores: undo.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use needle_ir::builder::FunctionBuilder;
    use needle_ir::{BlockId, Type, Value as V};
    use needle_regions::OffloadRegion;

    use crate::build::build_frame;

    /// z = x + y; if z > 10 { store z -> p; out = z * 2 } (hot path region)
    fn guarded_frame() -> Frame {
        let mut fb = FunctionBuilder::new("g", &[Type::I64, Type::I64, Type::Ptr], Some(Type::I64));
        let entry = fb.entry();
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        let done = fb.block("done");
        fb.switch_to(entry);
        let z = fb.add(fb.arg(0), fb.arg(1));
        let c = fb.icmp_sgt(z, V::int(10));
        fb.cond_br(c, hot, cold);
        fb.switch_to(hot);
        fb.store(z, fb.arg(2));
        let out = fb.mul(z, V::int(2));
        fb.br(done);
        fb.switch_to(cold);
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(hot, out), (cold, V::int(0))]);
        fb.ret(Some(r));
        let f = fb.finish();
        let region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 10, 0.9);
        build_frame(&f, &region).unwrap()
    }

    #[test]
    fn commit_applies_stores_and_returns_live_outs() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(7), Val::Int(8), Val::Int(64)], &mut mem).unwrap();
        match out {
            FrameOutcome::Committed { live_outs, stores } => {
                assert_eq!(stores, 1);
                assert_eq!(live_outs, vec![Val::Int(30)]); // (7+8)*2
            }
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(mem.load(64, Type::I64), Val::Int(15));
    }

    #[test]
    fn abort_rolls_back_memory_exactly() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        mem.store(64, Val::Int(999));
        let before = mem.peek(64);
        // 2 + 3 = 5, guard (z > 10) fails.
        let out = run_frame(&frame, &[Val::Int(2), Val::Int(3), Val::Int(64)], &mut mem).unwrap();
        match out {
            FrameOutcome::Aborted {
                failed_guard,
                rolled_back,
            } => {
                assert_eq!(failed_guard, 0);
                assert_eq!(rolled_back, 1); // the speculative store was undone
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(mem.peek(64), before);
        assert!(!out.committed());
    }

    #[test]
    fn live_in_arity_is_checked() {
        let frame = guarded_frame();
        let mut mem = Memory::new();
        let err = run_frame(&frame, &[Val::Int(1)], &mut mem).unwrap_err();
        assert_eq!(
            err,
            ExecFrameError::LiveInArity {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn predicated_store_in_braid_only_fires_on_taken_arm() {
        // Braid: if c { store 1 -> p } else { store 2 -> q }
        let mut fb = FunctionBuilder::new("b", &[Type::I64, Type::Ptr, Type::Ptr], None);
        let entry = fb.entry();
        let t = fb.block("t");
        let e = fb.block("e");
        let done = fb.block("done");
        fb.switch_to(entry);
        let c = fb.icmp_sgt(fb.arg(0), V::int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.store(V::int(1), fb.arg(1));
        fb.br(done);
        fb.switch_to(e);
        fb.store(V::int(2), fb.arg(2));
        fb.br(done);
        fb.switch_to(done);
        fb.ret(None);
        let f = fb.finish();
        let mut region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(3)], 1, 1.0);
        region.blocks = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        region.edges.insert((BlockId(0), BlockId(2)));
        region.edges.insert((BlockId(2), BlockId(3)));
        let frame = build_frame(&f, &region).unwrap();

        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(5), Val::Int(0), Val::Int(8)], &mut mem).unwrap();
        assert!(out.committed());
        assert_eq!(mem.load(0, Type::I64), Val::Int(1));
        assert_eq!(mem.load(8, Type::I64), Val::Int(0)); // untaken arm's store suppressed

        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(-5), Val::Int(0), Val::Int(8)], &mut mem).unwrap();
        assert!(out.committed());
        assert_eq!(mem.load(0, Type::I64), Val::Int(0));
        assert_eq!(mem.load(8, Type::I64), Val::Int(2));
    }

    #[test]
    fn guard_in_untaken_arm_does_not_abort() {
        // Braid arm with a nested guard: if c { if d { .. } inside } else {}
        // Build: entry: c = a>0; br c, t, e; t: d = a>10; br d, t2, out(!);
        // t2: x=a+1; br done; e: br done; done.
        let mut fb = FunctionBuilder::new("n", &[Type::I64], Some(Type::I64));
        let entry = fb.entry();
        let t = fb.block("t");
        let t2 = fb.block("t2");
        let e = fb.block("e");
        let done = fb.block("done");
        let out_cold = fb.block("out_cold");
        fb.switch_to(entry);
        let c = fb.icmp_sgt(fb.arg(0), V::int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let d = fb.icmp_sgt(fb.arg(0), V::int(10));
        fb.cond_br(d, t2, out_cold);
        fb.switch_to(t2);
        let x = fb.add(fb.arg(0), V::int(1));
        fb.br(done);
        fb.switch_to(e);
        fb.br(done);
        fb.switch_to(done);
        let r = fb.phi(Type::I64, &[(t2, x), (e, V::int(0))]);
        fb.ret(Some(r));
        fb.switch_to(out_cold);
        fb.ret(Some(V::int(-1)));
        let f = fb.finish();

        let mut region = OffloadRegion::from_path(&[BlockId(0), BlockId(1), BlockId(2)], 1, 1.0);
        region.blocks = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4)];
        region.edges.insert((BlockId(0), BlockId(3)));
        region.edges.insert((BlockId(2), BlockId(4)));
        region.edges.insert((BlockId(3), BlockId(4)));
        let frame = build_frame(&f, &region).unwrap();
        assert_eq!(frame.guards.len(), 1); // the d-branch guard

        // a = -3: the else arm is taken; the guard in the untaken `t` arm
        // must not fire even though d = false.
        let mut mem = Memory::new();
        let out = run_frame(&frame, &[Val::Int(-3)], &mut mem).unwrap();
        assert!(out.committed(), "predicated-off guard must pass: {out:?}");

        // a = 5: t taken, d = false → genuine guard failure.
        let out = run_frame(&frame, &[Val::Int(5)], &mut mem).unwrap();
        assert!(!out.committed());

        // a = 20: t, t2 → commit with live-out 21.
        let out = run_frame(&frame, &[Val::Int(20)], &mut mem).unwrap();
        match out {
            FrameOutcome::Committed { live_outs, .. } => {
                assert_eq!(live_outs, vec![Val::Int(21)])
            }
            other => panic!("{other:?}"),
        }
    }
}
