//! Frame data structures.

use needle_ir::{Constant, InstId, Op, Type, Value};
use needle_regions::OffloadRegion;

/// A value inside a frame's dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameValue {
    /// Result of the `n`-th frame op.
    Op(usize),
    /// The `n`-th live-in.
    LiveIn(usize),
    /// An inline constant.
    Const(Constant),
}

impl FrameValue {
    /// The true constant, used for always-executing predicates.
    pub const TRUE: FrameValue = FrameValue::Const(Constant::Int(1));

    /// The op index, if this value is an op result.
    pub fn as_op(self) -> Option<usize> {
        match self {
            FrameValue::Op(i) => Some(i),
            _ => None,
        }
    }
}

/// Frame operation kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameOpKind {
    /// A pure computation cloned from the IR.
    Compute(Op),
    /// Speculative load: `args[0]` is the address.
    Load,
    /// Undo-logged store: `args[0]` value, `args[1]` address. Executes only
    /// when the op's predicate holds.
    Store,
    /// Asynchronous guard on `args[0]`: the frame aborts (at commit time)
    /// if the value is not `expected`. No op depends on a guard.
    Guard {
        /// The branch direction that keeps execution inside the region.
        expected: bool,
    },
}

/// One node of the frame dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOp {
    /// What the op does.
    pub kind: FrameOpKind,
    /// Operands.
    pub args: Vec<FrameValue>,
    /// Result type.
    pub ty: Type,
    /// Execution predicate (Braid-internal control flow); `None` means the
    /// op always executes. Stores honour it architecturally; pure ops run
    /// speculatively regardless.
    pub pred: Option<FrameValue>,
    /// Provenance: the IR instruction this op was cloned from, if any.
    pub src: Option<InstId>,
    /// Immediate (the [`Op::Gep`] scale).
    pub imm: i64,
}

/// A live-in: a value defined outside the region that the frame consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveIn {
    /// The IR value at the region boundary.
    pub value: Value,
    /// Its type.
    pub ty: Type,
}

/// A live-out: a region-defined IR value consumed after the region exits,
/// with the frame value that produces it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveOut {
    /// The IR instruction whose value escapes.
    pub inst: InstId,
    /// The frame value holding it at commit.
    pub value: FrameValue,
}

/// An accelerator-ready software frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Dataflow ops in a valid (topologically sorted) execution order.
    pub ops: Vec<FrameOp>,
    /// Live-ins in argument order.
    pub live_ins: Vec<LiveIn>,
    /// Live-outs transferred back to the host on commit.
    pub live_outs: Vec<LiveOut>,
    /// Indices into `ops` of the guard operations.
    pub guards: Vec<usize>,
    /// φs cancelled during construction (Table II C6).
    pub phis_cancelled: usize,
    /// Static store count = undo-log entries per invocation upper bound.
    pub undo_log_size: usize,
    /// Loop-carried value pairs `(live_in index, live_out index)`: the
    /// live-out feeds the live-in on the next invocation (an entry-block φ
    /// and its back-edge update). These bound the initiation interval when
    /// chained invocations pipeline on the fabric.
    pub loop_carried: Vec<(usize, usize)>,
    /// The region this frame was built from.
    pub region: OffloadRegion,
}

impl Frame {
    /// Number of dataflow ops (guards included).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of memory operations.
    pub fn num_mem_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, FrameOpKind::Load | FrameOpKind::Store))
            .count()
    }

    /// Number of floating-point ops (for FU selection / energy).
    pub fn num_float_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, FrameOpKind::Compute(op) if op.is_float()))
            .count()
    }

    /// Dataflow depth: the longest dependence chain through the ops,
    /// counting each op as one level (the critical path in "op levels").
    pub fn dataflow_depth(&self) -> usize {
        let mut depth = vec![0usize; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            let d = op
                .args
                .iter()
                .chain(op.pred.iter())
                .filter_map(|a| a.as_op())
                .map(|j| depth[j])
                .max()
                .unwrap_or(0);
            depth[i] = d + 1;
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Structural sanity check: every operand refers backwards and every
    /// op carries the arguments its kind requires.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            for a in op.args.iter().chain(op.pred.iter()) {
                match a {
                    FrameValue::Op(j) if *j >= i => {
                        return Err(format!("op {i} uses forward value op{j}"));
                    }
                    FrameValue::LiveIn(k) if *k >= self.live_ins.len() => {
                        return Err(format!("op {i} uses out-of-range live-in {k}"));
                    }
                    _ => {}
                }
            }
            let required = match op.kind {
                FrameOpKind::Compute(o) => o.arity(),
                FrameOpKind::Load => 1,
                FrameOpKind::Store => 2,
                FrameOpKind::Guard { .. } => 1,
            };
            if op.args.len() < required {
                return Err(format!(
                    "op {i} has {} args, needs {required}",
                    op.args.len()
                ));
            }
        }
        for g in &self.guards {
            if !matches!(self.ops.get(*g).map(|o| o.kind), Some(FrameOpKind::Guard { .. })) {
                return Err(format!("guard index {g} is not a Guard op"));
            }
        }
        for lo in &self.live_outs {
            if let FrameValue::Op(j) = lo.value {
                if j >= self.ops.len() {
                    return Err(format!("live-out refers to out-of-range op {j}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tiny_frame() -> Frame {
        // op0 = li0 + 1 ; op1 = guard(op0 > 0) ... encoded as compute + guard
        let add = FrameOp {
            kind: FrameOpKind::Compute(Op::Add),
            args: vec![FrameValue::LiveIn(0), FrameValue::Const(Constant::Int(1))],
            ty: Type::I64,
            pred: None,
            src: None,
            imm: 0,
        };
        let cmp = FrameOp {
            kind: FrameOpKind::Compute(Op::ICmp(needle_ir::CmpOp::Gt)),
            args: vec![FrameValue::Op(0), FrameValue::Const(Constant::Int(0))],
            ty: Type::I1,
            pred: None,
            src: None,
            imm: 0,
        };
        let guard = FrameOp {
            kind: FrameOpKind::Guard { expected: true },
            args: vec![FrameValue::Op(1)],
            ty: Type::I1,
            pred: None,
            src: None,
            imm: 0,
        };
        Frame {
            ops: vec![add, cmp, guard],
            live_ins: vec![LiveIn {
                value: Value::Arg(0),
                ty: Type::I64,
            }],
            live_outs: vec![LiveOut {
                inst: InstId(0),
                value: FrameValue::Op(0),
            }],
            guards: vec![2],
            phis_cancelled: 0,
            undo_log_size: 0,
            loop_carried: vec![],
            region: OffloadRegion::from_path(&[needle_ir::BlockId(0)], 1, 1.0),
        }
    }

    #[test]
    fn frame_metrics() {
        let f = tiny_frame();
        f.validate().unwrap();
        assert_eq!(f.num_ops(), 3);
        assert_eq!(f.num_mem_ops(), 0);
        assert_eq!(f.num_float_ops(), 0);
        assert_eq!(f.dataflow_depth(), 3); // add -> cmp -> guard
    }

    #[test]
    fn validate_rejects_forward_references() {
        let mut f = tiny_frame();
        f.ops[0].args[0] = FrameValue::Op(2);
        assert!(f.validate().unwrap_err().contains("forward"));

        let mut f = tiny_frame();
        f.ops[0].args[0] = FrameValue::LiveIn(5);
        assert!(f.validate().unwrap_err().contains("live-in"));

        let mut f = tiny_frame();
        f.guards = vec![0];
        assert!(f.validate().unwrap_err().contains("not a Guard"));

        let mut f = tiny_frame();
        f.live_outs[0].value = FrameValue::Op(99);
        assert!(f.validate().unwrap_err().contains("out-of-range op"));
        let _ = BTreeSet::from([1]);
    }
}
